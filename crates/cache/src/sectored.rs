//! The sectored first-level data cache (Section 4.2).
//!
//! To accommodate the variable number of valid words returned by the WOC,
//! the paper uses a sectored L1D: each line carries per-word valid bits.
//! An access to an invalid word of a resident line is a *sector miss* and
//! triggers a request to the L2 for the missing sector.

use crate::{CacheConfig, CacheSet};
use ldis_mem::{Footprint, LineAddr, WordIndex};

/// The result of an L1D lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1Lookup {
    /// Line resident and every requested word valid.
    Hit,
    /// Line resident but at least one requested word invalid (Section 4.2:
    /// "If an invalid word in the line is accessed by the processor, a
    /// request for the line is sent to the distill-cache").
    SectorMiss,
    /// Line not resident.
    Miss,
}

/// A line evicted from the sectored L1D, carrying the footprint that is
/// sent to the LOC (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedL1Line {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Words of the line the processor actually accessed while resident.
    pub footprint: Footprint,
    /// Whether the line was written.
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct SectorEntry {
    valid_words: u16,
    footprint: Footprint,
    dirty: bool,
}

/// A sectored set-associative data cache with per-word valid bits, per-line
/// footprints and LRU replacement.
///
/// # Example
///
/// ```
/// use ldis_cache::{CacheConfig, L1Lookup, SectoredCache};
/// use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};
///
/// let mut l1 = SectoredCache::new(CacheConfig::new(16 << 10, 2, LineGeometry::default()));
/// let line = LineAddr::new(5);
/// assert_eq!(l1.lookup(line, WordIndex::new(0), WordIndex::new(0)), L1Lookup::Miss);
/// l1.fill(line, Footprint::from_bits(0b0001)); // only word 0 valid
/// assert_eq!(l1.access(line, WordIndex::new(0), WordIndex::new(0), false), L1Lookup::Hit);
/// assert_eq!(l1.access(line, WordIndex::new(3), WordIndex::new(3), false), L1Lookup::SectorMiss);
/// ```
#[derive(Clone, Debug)]
pub struct SectoredCache {
    cfg: CacheConfig,
    sets: Vec<CacheSet>,
    sectors: Vec<Vec<SectorEntry>>,
}

impl SectoredCache {
    /// Creates an empty sectored cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.num_sets())
            .map(|_| CacheSet::new(cfg.ways()))
            .collect();
        let sectors = (0..cfg.num_sets())
            .map(|_| vec![SectorEntry::default(); cfg.ways() as usize])
            .collect();
        SectoredCache { cfg, sets, sectors }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Classifies an access to words `first..=last` of `line` without
    /// changing any state.
    pub fn lookup(&self, line: LineAddr, first: WordIndex, last: WordIndex) -> L1Lookup {
        // `set_index` masks into `0..num_sets` and `way < ways()`, so the
        // checked lookups cannot miss; a miss classifies as `Miss`.
        let set_idx = self.cfg.set_index(line);
        let Some(set) = self.sets.get(set_idx) else {
            return L1Lookup::Miss;
        };
        match set.find(self.cfg.tag(line)) {
            None => L1Lookup::Miss,
            Some(way) => {
                let valid = self
                    .sectors
                    .get(set_idx)
                    .and_then(|s| s.get(way))
                    .map_or(0, |sector| sector.valid_words);
                if span_mask(first, last) & !valid == 0 {
                    L1Lookup::Hit
                } else {
                    L1Lookup::SectorMiss
                }
            }
        }
    }

    /// Performs an access to words `first..=last`: on a full hit, promotes
    /// the line, records the words in the footprint and sets the dirty bit
    /// for writes. On a sector miss the footprint/dirty update still happens
    /// (the processor *will* use the words once the sector arrives) but the
    /// caller must fetch the missing words via [`fill_words`].
    ///
    /// [`fill_words`]: SectoredCache::fill_words
    pub fn access(
        &mut self,
        line: LineAddr,
        first: WordIndex,
        last: WordIndex,
        write: bool,
    ) -> L1Lookup {
        let set_idx = self.cfg.set_index(line);
        let Some(set) = self.sets.get_mut(set_idx) else {
            return L1Lookup::Miss;
        };
        match set.find(self.cfg.tag(line)) {
            None => L1Lookup::Miss,
            Some(way) => {
                set.promote(way);
                let Some(sector) = self.sectors.get_mut(set_idx).and_then(|s| s.get_mut(way))
                else {
                    return L1Lookup::Miss;
                };
                sector.footprint.touch_span(first, last);
                sector.dirty |= write;
                if span_mask(first, last) & !sector.valid_words == 0 {
                    L1Lookup::Hit
                } else {
                    L1Lookup::SectorMiss
                }
            }
        }
    }

    /// Installs `line` with the given valid words (a fill from the L2),
    /// evicting the LRU line if needed. The footprint starts empty — the
    /// caller records the demand words with [`access`](SectoredCache::access).
    pub fn fill(&mut self, line: LineAddr, valid_words: Footprint) -> Option<EvictedL1Line> {
        let set_idx = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        let set = self.sets.get_mut(set_idx)?;
        debug_assert!(set.find(tag).is_none(), "filling a resident line");
        let way = set.victim_way();
        let victim = {
            let entry = set.entry(way);
            if entry.valid {
                self.sectors
                    .get(set_idx)
                    .and_then(|s| s.get(way))
                    .map(|sector| EvictedL1Line {
                        line: self.cfg.line_of(set_idx, entry.tag),
                        footprint: sector.footprint,
                        dirty: sector.dirty,
                    })
            } else {
                None
            }
        };
        set.entry_mut(way).install(tag, false, false);
        set.promote(way);
        if let Some(slot) = self.sectors.get_mut(set_idx).and_then(|s| s.get_mut(way)) {
            *slot = SectorEntry {
                valid_words: valid_words.bits(),
                footprint: Footprint::empty(),
                dirty: false,
            };
        }
        victim
    }

    /// Adds valid words to a resident line (a sector fill). Returns whether
    /// the line was resident.
    pub fn fill_words(&mut self, line: LineAddr, valid_words: Footprint) -> bool {
        let set_idx = self.cfg.set_index(line);
        let found = self
            .sets
            .get(set_idx)
            .and_then(|set| set.find(self.cfg.tag(line)));
        match found {
            Some(way) => {
                if let Some(sector) = self.sectors.get_mut(set_idx).and_then(|s| s.get_mut(way)) {
                    sector.valid_words |= valid_words.bits();
                }
                true
            }
            None => false,
        }
    }

    /// Whether every word in `first..=last` of `line` is valid.
    pub fn words_valid(&self, line: LineAddr, first: WordIndex, last: WordIndex) -> bool {
        self.lookup(line, first, last) == L1Lookup::Hit
    }

    /// Invalidates `line` if resident, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedL1Line> {
        let set_idx = self.cfg.set_index(line);
        let set = self.sets.get_mut(set_idx)?;
        let way = set.find(self.cfg.tag(line))?;
        let sector = self
            .sectors
            .get(set_idx)
            .and_then(|s| s.get(way))
            .copied()
            .unwrap_or_default();
        set.entry_mut(way).valid = false;
        Some(EvictedL1Line {
            line,
            footprint: sector.footprint,
            dirty: sector.dirty,
        })
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> u64 {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.valid).count() as u64)
            .sum()
    }
}

fn span_mask(first: WordIndex, last: WordIndex) -> u16 {
    debug_assert!(first <= last);
    let width = last.get() - first.get() + 1;
    let ones = if width >= 16 {
        u16::MAX
    } else {
        (1u16 << width) - 1
    };
    ones << first.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::LineGeometry;

    fn l1() -> SectoredCache {
        SectoredCache::new(CacheConfig::new(16 << 10, 2, LineGeometry::default()))
    }

    fn w(i: u8) -> WordIndex {
        WordIndex::new(i)
    }

    #[test]
    fn span_mask_math() {
        assert_eq!(span_mask(w(0), w(0)), 0b1);
        assert_eq!(span_mask(w(1), w(3)), 0b1110);
        assert_eq!(span_mask(w(7), w(7)), 0b1000_0000);
    }

    #[test]
    fn full_fill_hits_all_words() {
        let mut c = l1();
        let line = LineAddr::new(9);
        c.fill(line, Footprint::full(8));
        for i in 0..8 {
            assert_eq!(c.access(line, w(i), w(i), false), L1Lookup::Hit);
        }
    }

    #[test]
    fn partial_fill_sector_misses_on_holes() {
        let mut c = l1();
        let line = LineAddr::new(9);
        c.fill(line, Footprint::from_bits(0b0000_0101));
        assert_eq!(c.access(line, w(0), w(0), false), L1Lookup::Hit);
        assert_eq!(c.access(line, w(2), w(2), false), L1Lookup::Hit);
        assert_eq!(c.access(line, w(1), w(1), false), L1Lookup::SectorMiss);
        // Filling the missing word turns it into a hit.
        assert!(c.fill_words(line, Footprint::from_bits(0b0000_0010)));
        assert_eq!(c.access(line, w(1), w(1), false), L1Lookup::Hit);
    }

    #[test]
    fn eviction_carries_footprint_not_valid_bits() {
        let mut c = l1();
        let set_stride = c.config().num_sets();
        let a = LineAddr::new(3);
        let b = LineAddr::new(3 + set_stride);
        let d = LineAddr::new(3 + 2 * set_stride);
        c.fill(a, Footprint::full(8));
        c.access(a, w(0), w(0), false);
        c.access(a, w(5), w(5), true);
        c.fill(b, Footprint::full(8));
        let ev = c.fill(d, Footprint::full(8)).expect("a is LRU, must evict");
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert_eq!(ev.footprint.used_words(), 2, "only touched words count");
    }

    #[test]
    fn lru_respects_access_order() {
        let mut c = l1();
        let s = c.config().num_sets();
        let (a, b, d) = (
            LineAddr::new(1),
            LineAddr::new(1 + s),
            LineAddr::new(1 + 2 * s),
        );
        c.fill(a, Footprint::full(8));
        c.fill(b, Footprint::full(8));
        c.access(a, w(0), w(0), false); // b becomes LRU
        let ev = c.fill(d, Footprint::full(8)).unwrap();
        assert_eq!(ev.line, b);
    }

    #[test]
    fn sector_miss_still_records_footprint() {
        let mut c = l1();
        let line = LineAddr::new(2);
        c.fill(line, Footprint::from_bits(0b1));
        assert_eq!(c.access(line, w(4), w(4), true), L1Lookup::SectorMiss);
        c.fill_words(line, Footprint::from_bits(0b1_0000));
        let ev = c.invalidate(line).unwrap();
        assert!(ev.dirty);
        assert!(ev.footprint.is_used(w(4)));
    }

    #[test]
    fn invalidate_nonresident_is_none() {
        let mut c = l1();
        assert!(c.invalidate(LineAddr::new(77)).is_none());
    }

    #[test]
    fn multi_word_span_requires_all_words() {
        let mut c = l1();
        let line = LineAddr::new(4);
        c.fill(line, Footprint::from_bits(0b0011));
        assert_eq!(c.lookup(line, w(0), w(1)), L1Lookup::Hit);
        assert_eq!(c.lookup(line, w(1), w(2)), L1Lookup::SectorMiss);
    }
}
