//! Property tests for the cache substrate.

use ldis_cache::{CacheConfig, L1Lookup, SectoredCache, SetAssocCache};
use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};
use proptest::prelude::*;

fn small_cfg() -> CacheConfig {
    CacheConfig::with_sets(8, 4, LineGeometry::default())
}

proptest! {
    /// Occupancy never exceeds capacity, and a line reported resident is
    /// found again until something in its set displaces it.
    #[test]
    fn occupancy_bounded_and_lookup_consistent(
        lines in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut c = SetAssocCache::new(small_cfg());
        for &l in &lines {
            let line = LineAddr::new(l);
            if !c.access(line, Some(WordIndex::new(0)), false) {
                c.install(line, Some(WordIndex::new(0)), false, false);
            }
            prop_assert!(c.contains(line), "just-installed line must be resident");
            prop_assert_eq!(c.position_of(line), Some(0), "just-touched line is MRU");
        }
        prop_assert!(c.occupancy() <= small_cfg().num_lines());
        prop_assert_eq!(c.iter_lines().count() as u64, c.occupancy());
    }

    /// LRU: touching a line always protects it from the very next eviction
    /// in its set.
    #[test]
    fn touched_line_survives_next_eviction(fill in 0u64..8, extra in 8u64..64) {
        let mut c = SetAssocCache::new(small_cfg());
        // Fill one set (set 0: lines ≡ 0 mod 8) with 4 lines.
        for i in 0..4u64 {
            c.install(LineAddr::new(i * 8), None, false, false);
        }
        let protect = LineAddr::new((fill % 4) * 8);
        c.access(protect, None, false);
        // One more install in the same set evicts exactly one line — not
        // the protected one.
        let newcomer = LineAddr::new((extra % 56 + 8) * 8);
        if !c.contains(newcomer) {
            let evicted = c.install(newcomer, None, false, false);
            prop_assert!(evicted.is_some());
            prop_assert_ne!(evicted.unwrap().line, protect);
        }
        prop_assert!(c.contains(protect));
    }

    /// The eviction footprint equals the union of all touches and merges.
    #[test]
    fn eviction_footprint_is_union(
        words in prop::collection::vec(0u8..8, 1..20),
        merge_bits in 0u16..256,
    ) {
        let mut c = SetAssocCache::new(CacheConfig::with_sets(2, 1, LineGeometry::default()));
        let line = LineAddr::new(0);
        c.install(line, None, false, false);
        let mut expect = Footprint::empty();
        for &w in &words {
            c.access(line, Some(WordIndex::new(w)), false);
            expect.touch(WordIndex::new(w));
        }
        c.merge_footprint(line, Footprint::from_bits(merge_bits), false);
        expect.merge(Footprint::from_bits(merge_bits));
        let ev = c.install(LineAddr::new(2), None, false, false).expect("1-way evicts");
        prop_assert_eq!(ev.footprint, expect);
    }

    /// Sectored cache: a word is valid iff it was filled; footprints track
    /// only touched words.
    #[test]
    fn sectored_valid_bits_track_fills(valid in 1u16..256, probe in 0u8..8) {
        let mut l1 = SectoredCache::new(CacheConfig::with_sets(4, 2, LineGeometry::default()));
        let line = LineAddr::new(1);
        let fp = Footprint::from_bits(valid);
        l1.fill(line, fp);
        let w = WordIndex::new(probe);
        let expected = if fp.is_used(w) { L1Lookup::Hit } else { L1Lookup::SectorMiss };
        prop_assert_eq!(l1.lookup(line, w, w), expected);
    }

    /// Invalidate returns exactly what was accumulated and empties the slot.
    #[test]
    fn invalidate_roundtrip(touch in 1u16..256, dirty in any::<bool>()) {
        let mut l1 = SectoredCache::new(CacheConfig::with_sets(4, 2, LineGeometry::default()));
        let line = LineAddr::new(3);
        l1.fill(line, Footprint::full(8));
        for w in Footprint::from_bits(touch).iter_used() {
            l1.access(line, w, w, dirty);
        }
        let ev = l1.invalidate(line).expect("resident");
        prop_assert_eq!(ev.footprint.bits(), touch);
        prop_assert_eq!(ev.dirty, dirty);
        prop_assert!(l1.invalidate(line).is_none());
    }
}
