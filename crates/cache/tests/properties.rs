//! Property tests for the cache substrate, driven by a deterministic
//! seeded generator (`SimRng`) so every run explores the same cases and
//! failures reproduce exactly.

use ldis_cache::{CacheConfig, L1Lookup, SectoredCache, SetAssocCache};
use ldis_mem::{Footprint, LineAddr, LineGeometry, SimRng, WordIndex};

fn small_cfg() -> CacheConfig {
    CacheConfig::with_sets(8, 4, LineGeometry::default())
}

/// Occupancy never exceeds capacity, and a line reported resident is
/// found again until something in its set displaces it.
#[test]
fn occupancy_bounded_and_lookup_consistent() {
    let mut rng = SimRng::new(0xcac1);
    for case in 0..100 {
        let mut c = SetAssocCache::new(small_cfg());
        let count = 1 + rng.index(299);
        for _ in 0..count {
            let line = LineAddr::new(rng.range(64));
            if !c.access(line, Some(WordIndex::new(0)), false) {
                c.install(line, Some(WordIndex::new(0)), false, false);
            }
            assert!(
                c.contains(line),
                "case {case}: just-installed line resident"
            );
            assert_eq!(
                c.position_of(line),
                Some(0),
                "case {case}: just-touched line is MRU"
            );
        }
        assert!(c.occupancy() <= small_cfg().num_lines());
        assert_eq!(c.iter_lines().count() as u64, c.occupancy());
    }
}

/// LRU: touching a line always protects it from the very next eviction
/// in its set.
#[test]
fn touched_line_survives_next_eviction() {
    let mut rng = SimRng::new(0xcac2);
    for case in 0..200 {
        let fill = rng.range(8);
        let extra = 8 + rng.range(56);
        let mut c = SetAssocCache::new(small_cfg());
        // Fill one set (set 0: lines ≡ 0 mod 8) with 4 lines.
        for i in 0..4u64 {
            c.install(LineAddr::new(i * 8), None, false, false);
        }
        let protect = LineAddr::new((fill % 4) * 8);
        c.access(protect, None, false);
        // One more install in the same set evicts exactly one line — not
        // the protected one.
        let newcomer = LineAddr::new((extra % 56 + 8) * 8);
        if !c.contains(newcomer) {
            let evicted = c.install(newcomer, None, false, false);
            let evicted = evicted.expect("full set must evict");
            assert_ne!(evicted.line, protect, "case {case}");
        }
        assert!(c.contains(protect), "case {case}");
    }
}

/// The eviction footprint equals the union of all touches and merges.
#[test]
fn eviction_footprint_is_union() {
    let mut rng = SimRng::new(0xcac3);
    for case in 0..200 {
        let mut c = SetAssocCache::new(CacheConfig::with_sets(2, 1, LineGeometry::default()));
        let line = LineAddr::new(0);
        c.install(line, None, false, false);
        let mut expect = Footprint::empty();
        let touches = 1 + rng.index(19);
        for _ in 0..touches {
            let w = WordIndex::new(rng.range(8) as u8);
            c.access(line, Some(w), false);
            expect.touch(w);
        }
        let merge_bits = rng.range(256) as u16;
        c.merge_footprint(line, Footprint::from_bits(merge_bits), false);
        expect.merge(Footprint::from_bits(merge_bits));
        let ev = c
            .install(LineAddr::new(2), None, false, false)
            .expect("1-way evicts");
        assert_eq!(ev.footprint, expect, "case {case}");
    }
}

/// Sectored cache: a word is valid iff it was filled; footprints track
/// only touched words.
#[test]
fn sectored_valid_bits_track_fills() {
    let mut rng = SimRng::new(0xcac4);
    for case in 0..500 {
        let valid = 1 + rng.range(255) as u16;
        let probe = rng.range(8) as u8;
        let mut l1 = SectoredCache::new(CacheConfig::with_sets(4, 2, LineGeometry::default()));
        let line = LineAddr::new(1);
        let fp = Footprint::from_bits(valid);
        l1.fill(line, fp);
        let w = WordIndex::new(probe);
        let expected = if fp.is_used(w) {
            L1Lookup::Hit
        } else {
            L1Lookup::SectorMiss
        };
        assert_eq!(l1.lookup(line, w, w), expected, "case {case}");
    }
}

/// Invalidate returns exactly what was accumulated and empties the slot.
#[test]
fn invalidate_roundtrip() {
    let mut rng = SimRng::new(0xcac5);
    for case in 0..500 {
        let touch = 1 + rng.range(255) as u16;
        let dirty = rng.chance(0.5);
        let mut l1 = SectoredCache::new(CacheConfig::with_sets(4, 2, LineGeometry::default()));
        let line = LineAddr::new(3);
        l1.fill(line, Footprint::full(8));
        for w in Footprint::from_bits(touch).iter_used() {
            l1.access(line, w, w, dirty);
        }
        let ev = l1.invalidate(line).expect("resident");
        assert_eq!(ev.footprint.bits(), touch, "case {case}");
        assert_eq!(ev.dirty, dirty, "case {case}");
        assert!(l1.invalidate(line).is_none(), "case {case}");
    }
}
