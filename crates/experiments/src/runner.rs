//! Shared machinery for running benchmark × cache-configuration matrices.
//!
//! Every cell of a matrix is an independent simulation: the cell's
//! workload seed is derived from `RunConfig.seed`, the benchmark's stable
//! id and the cache configuration's label via
//! [`SimRng::derive`](ldis_mem::SimRng::derive). Cells therefore execute
//! on the [`parallel`](crate::parallel) worker pool in any order while the
//! merged matrix stays bit-identical for every thread count.

use crate::parallel;
use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, HierarchyStats, L2Stats, SecondLevel};
use ldis_mem::{stable_id, LineGeometry, SimRng};
use ldis_mrc::{ConfigResult, MattsonL2, SampledMrc, ShardsConfig, ShardsL2};
use ldis_workloads::{Benchmark, TraceLength};

/// Global knobs for an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Memory accesses per benchmark per cache configuration.
    pub accesses: u64,
    /// Warmup accesses excluded from the statistics (the caches stay warm;
    /// only the counters reset). 0 keeps the published defaults.
    pub warmup: u64,
    /// Workload seed (all randomness derives from it).
    pub seed: u64,
}

impl RunConfig {
    /// The default experiment length: long enough for every working set to
    /// wrap several times and the reverter/median mechanisms to settle.
    pub fn paper() -> Self {
        RunConfig {
            accesses: 2_000_000,
            warmup: 0,
            seed: 42,
        }
    }

    /// A short configuration for smoke tests.
    pub fn quick() -> Self {
        RunConfig {
            accesses: 150_000,
            warmup: 0,
            seed: 42,
        }
    }

    /// Returns a copy with a different access budget.
    #[must_use]
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Returns a copy with a warmup phase (excluded from statistics).
    #[must_use]
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// The workload seed of one (benchmark, configuration) sweep cell:
    /// a deterministic split of `self.seed` by the benchmark's stable id
    /// and the configuration label's stable hash. Every cell draws from
    /// its own stream, so a sweep's cells are statistically independent
    /// and may run on any number of threads in any order.
    pub fn seed_for(&self, benchmark: &Benchmark, config_label: &str) -> u64 {
        SimRng::derive_seed(self.seed, u64::from(benchmark.id), stable_id(config_label))
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::paper()
    }
}

/// The distilled outcome of one benchmark × configuration run.
///
/// `PartialEq` compares every counter and statistic bit for bit — it is
/// what the serial-vs-parallel equivalence tests assert on.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// L2 configuration label.
    pub config: String,
    /// Demand misses per kilo-instruction.
    pub mpki: f64,
    /// Full second-level statistics.
    pub l2: L2Stats,
    /// First-level and trace statistics.
    pub hierarchy: HierarchyStats,
}

impl RunResult {
    /// L2 hit rate over demand accesses.
    pub fn hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }
}

/// Runs `benchmark` for `cfg.accesses` accesses against the L2 produced by
/// `make_l2`, returning the distilled result. The workload seed is the
/// cell's derived seed ([`RunConfig::seed_for`]), so each (benchmark,
/// configuration) cell of a sweep reproduces independently of every other.
pub fn run<L2, F>(benchmark: &Benchmark, cfg: &RunConfig, make_l2: F) -> RunResult
where
    L2: SecondLevel,
    F: FnOnce() -> L2,
{
    let l2 = make_l2();
    let mut workload = (benchmark.make)(cfg.seed_for(benchmark, l2.name()));
    let mut hier = Hierarchy::hpca2007(l2);
    if cfg.warmup > 0 {
        workload.drive(&mut hier, TraceLength::accesses(cfg.warmup));
        hier.reset_stats();
    }
    workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));
    RunResult {
        benchmark: benchmark.name.to_owned(),
        config: hier.l2().name().to_owned(),
        mpki: hier.mpki(),
        l2: hier.l2().stats().clone(),
        hierarchy: *hier.stats(),
    }
}

/// The paper's baseline L2 configuration (Table 1): `size_bytes` with
/// 8 ways and 64 B lines. Sizes that cannot keep a power-of-two set count
/// at 8 ways (e.g. 1.5 MB) keep 2048 sets and scale the ways instead, the
/// standard way such capacities are built.
pub fn baseline_config(size_bytes: u64) -> CacheConfig {
    let geom = LineGeometry::default();
    let lines = size_bytes / geom.line_bytes() as u64;
    if (lines / 8).is_power_of_two() {
        CacheConfig::new(size_bytes, 8, geom)
    } else {
        let ways = (lines / 2048) as u32;
        CacheConfig::with_sets(2048, ways, geom)
    }
}

/// Runs `benchmark` against a traditional cache of `size_bytes`.
pub fn run_baseline(benchmark: &Benchmark, cfg: &RunConfig, size_bytes: u64) -> RunResult {
    run(benchmark, cfg, || {
        BaselineL2::new(baseline_config(size_bytes))
    })
}

/// Runs `benchmark` against a traditional cache of `size_bytes` and also
/// returns the words-used histogram covering *both* evicted lines and the
/// lines still resident at the end of the run. When a working set fits the
/// cache, evictions (where footprints are normally sampled) dry up; the
/// resident snapshot keeps the Figure 1 / Table 6 measurement meaningful
/// across cache sizes.
pub fn run_baseline_with_words(
    benchmark: &Benchmark,
    cfg: &RunConfig,
    size_bytes: u64,
) -> (RunResult, ldis_mem::stats::Histogram) {
    let l2 = BaselineL2::new(baseline_config(size_bytes));
    let mut workload = (benchmark.make)(cfg.seed_for(benchmark, l2.name()));
    let mut hier = Hierarchy::hpca2007(l2);
    if cfg.warmup > 0 {
        workload.drive(&mut hier, TraceLength::accesses(cfg.warmup));
        hier.reset_stats();
    }
    workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));
    let mut words = hier.l2().stats().words_used_at_evict.clone();
    for (_, entry) in hier.l2().cache().iter_lines() {
        if !entry.is_instr {
            words.record(entry.footprint.used_words() as usize);
        }
    }
    let result = RunResult {
        benchmark: benchmark.name.to_owned(),
        config: hier.l2().name().to_owned(),
        mpki: hier.mpki(),
        l2: hier.l2().stats().clone(),
        hierarchy: *hier.stats(),
    };
    (result, words)
}

/// One traditional cache size's reconstructed statistics within a
/// [`run_capacity_sweep`] pass.
#[derive(Clone, Debug)]
pub struct CapacityPoint {
    /// Cache capacity in bytes.
    pub size_bytes: u64,
    /// The concrete geometry ([`baseline_config`] of `size_bytes`).
    pub config: CacheConfig,
    /// Demand misses per kilo-instruction, through the same
    /// [`mpki`](ldis_mem::stats::mpki) float path as a direct run.
    pub mpki: f64,
    /// The full reconstructed counters for this size.
    pub result: ConfigResult,
}

/// Every traditional-cache size of a capacity sweep, answered from one
/// Mattson profiling pass over the benchmark's trace.
///
/// The reconstruction is exact, not approximate: because every direct
/// baseline run of a given benchmark derives the same workload seed
/// (the configuration label is always `"baseline"` regardless of size)
/// and the L1s' behavior does not depend on the L2's capacity, the L2
/// request stream is identical across sizes — so a stack-distance pass
/// over that one stream reproduces each size's counters bit for bit.
/// The differential-oracle suite (`tests/mrc_oracle.rs`) enforces this
/// equality against direct simulation for the whole quick matrix.
#[derive(Clone, Debug)]
pub struct CapacitySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// First-level and trace statistics (identical for every size).
    pub hierarchy: HierarchyStats,
    /// One point per requested size, in the order given.
    pub points: Vec<CapacityPoint>,
}

impl CapacitySweep {
    /// The point for `size_bytes`, if it was part of the sweep.
    pub fn point(&self, size_bytes: u64) -> Option<&CapacityPoint> {
        self.points.iter().find(|p| p.size_bytes == size_bytes)
    }

    /// The MPKI at `size_bytes` (`NaN` if the size was not swept, which
    /// the golden snapshots would immediately surface).
    pub fn mpki_at(&self, size_bytes: u64) -> f64 {
        self.point(size_bytes).map_or(f64::NAN, |p| p.mpki)
    }
}

/// Runs `benchmark` once and reconstructs a traditional LRU baseline of
/// every size in `sizes` from that single pass, via the Mattson
/// stack-distance profiler ([`MattsonL2`]). Equivalent to calling
/// [`run_baseline`] once per size — bit for bit, including the words-used
/// histograms of [`run_baseline_with_words`] — at the cost of one
/// simulation instead of `sizes.len()`.
pub fn run_capacity_sweep(benchmark: &Benchmark, cfg: &RunConfig, sizes: &[u64]) -> CapacitySweep {
    let configs: Vec<CacheConfig> = sizes.iter().map(|&s| baseline_config(s)).collect();
    let l2 = MattsonL2::for_configs(&configs);
    let mut workload = (benchmark.make)(cfg.seed_for(benchmark, l2.name()));
    let mut hier = Hierarchy::hpca2007(l2);
    if cfg.warmup > 0 {
        workload.drive(&mut hier, TraceLength::accesses(cfg.warmup));
        hier.reset_stats();
    }
    workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));
    let instructions = hier.stats().instructions;
    let points: Vec<CapacityPoint> = sizes
        .iter()
        .zip(&configs)
        .filter_map(|(&size_bytes, config)| {
            let result = hier.l2().result_for(config)?;
            Some(CapacityPoint {
                size_bytes,
                config: *config,
                mpki: ldis_mem::stats::mpki(result.line_misses, instructions),
                result,
            })
        })
        .collect();
    assert_eq!(
        points.len(),
        sizes.len(),
        "every requested size is covered by construction"
    );
    CapacitySweep {
        benchmark: benchmark.name.to_owned(),
        hierarchy: *hier.stats(),
        points,
    }
}

/// One capacity's *estimated* statistics within a
/// [`run_sampled_capacity_sweep`] pass.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledCapacityPoint {
    /// Cache capacity in bytes.
    pub size_bytes: u64,
    /// Capacity in lines (the sampled engine's query unit).
    pub capacity_lines: u64,
    /// Estimated miss ratio of the demand stream at this capacity.
    pub miss_ratio: f64,
    /// Estimated demand MPKI at this capacity.
    pub mpki: f64,
}

/// Every size of a capacity sweep, answered from one constant-memory
/// SHARDS pass ([`ShardsL2`]) over the benchmark's trace.
///
/// Unlike [`CapacitySweep`] the reconstruction is *approximate*: the
/// sampled profiler models a fully-associative LRU cache over a spatially
/// hashed sample of the lines. The bounded-error oracle
/// (`tests/mrc_sampled_oracle.rs`) asserts every point stays within the
/// per-rate MPKI budget [`ldis_mrc::mpki_tolerance`] of the exact
/// Mattson reconstruction. Because the adapter also reports its name as
/// `"baseline"`, the L2 request stream — and therefore `hierarchy` — is
/// byte-identical to the exact run's.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledCapacitySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// First-level and trace statistics (identical to the exact run's).
    pub hierarchy: HierarchyStats,
    /// The finished sampled MRC the points were answered from.
    pub mrc: SampledMrc,
    /// High-water mark of the sample set during the pass.
    pub peak_samples: usize,
    /// Final realized sampling rate (≤ the configured rate).
    pub final_rate: f64,
    /// Mean words used per tracked data line (advisor's LOC:WOC signal).
    pub mean_words_used: f64,
    /// One point per requested size, in the order given.
    pub points: Vec<SampledCapacityPoint>,
}

impl SampledCapacitySweep {
    /// The point for `size_bytes`, if it was part of the sweep.
    pub fn point(&self, size_bytes: u64) -> Option<&SampledCapacityPoint> {
        self.points.iter().find(|p| p.size_bytes == size_bytes)
    }

    /// The estimated MPKI at `size_bytes` (`NaN` if the size was not
    /// swept).
    pub fn mpki_at(&self, size_bytes: u64) -> f64 {
        self.point(size_bytes).map_or(f64::NAN, |p| p.mpki)
    }
}

/// Runs `benchmark` once behind a [`ShardsL2`] sampled profiler and
/// estimates a traditional LRU baseline of every size in `sizes` from the
/// finished sampled MRC. The sampled counterpart of
/// [`run_capacity_sweep`]: same derived seed, same request stream, a
/// fraction of the memory and work.
pub fn run_sampled_capacity_sweep(
    benchmark: &Benchmark,
    cfg: &RunConfig,
    sizes: &[u64],
    shards: &ShardsConfig,
) -> SampledCapacitySweep {
    let geom = LineGeometry::default();
    let l2 = ShardsL2::new(geom, *shards);
    let mut workload = (benchmark.make)(cfg.seed_for(benchmark, l2.name()));
    let mut hier = Hierarchy::hpca2007(l2);
    if cfg.warmup > 0 {
        workload.drive(&mut hier, TraceLength::accesses(cfg.warmup));
        hier.reset_stats();
    }
    workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));
    let instructions = hier.stats().instructions;
    let mrc = hier.l2().mrc();
    let points: Vec<SampledCapacityPoint> = sizes
        .iter()
        .map(|&size_bytes| {
            let capacity_lines = size_bytes / geom.line_bytes() as u64;
            SampledCapacityPoint {
                size_bytes,
                capacity_lines,
                miss_ratio: mrc.miss_ratio(capacity_lines),
                mpki: mrc.estimated_mpki(capacity_lines, instructions),
            }
        })
        .collect();
    SampledCapacitySweep {
        benchmark: benchmark.name.to_owned(),
        hierarchy: *hier.stats(),
        peak_samples: hier.l2().profiler().peak_samples(),
        final_rate: hier.l2().profiler().current_rate(),
        mean_words_used: hier.l2().profiler().mean_words_used(),
        mrc,
        points,
    }
}

/// Runs one closure per benchmark on the configured worker pool and
/// returns the results in benchmark order. The closure receives the
/// benchmark and must be self-contained (construct its own workload and
/// caches).
pub fn for_each_benchmark<T, F>(benchmarks: &[Benchmark], job: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Benchmark) -> T + Sync,
{
    parallel::sweep(benchmarks, job)
}

/// Runs a full benchmark × configuration matrix with every *cell* as one
/// unit of parallel work, and returns one `Vec` of `configs` cell results
/// per benchmark, in canonical (benchmark-major, configuration-minor)
/// order. Compared to [`for_each_benchmark`], which parallelizes only
/// across benchmarks, this keeps all workers busy even when one benchmark
/// dominates the matrix cost.
///
/// `job` receives the benchmark and the configuration index `0..configs`
/// and must be a pure function of the pair.
pub fn run_matrix<T, F>(benchmarks: &[Benchmark], configs: usize, job: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&Benchmark, usize) -> T + Sync,
{
    run_matrix_with_threads(parallel::configured_threads(), benchmarks, configs, job)
}

/// [`run_matrix`] with an explicit worker count (used by the
/// serial-vs-parallel equivalence tests and benchmarks).
pub fn run_matrix_with_threads<T, F>(
    threads: usize,
    benchmarks: &[Benchmark],
    configs: usize,
    job: F,
) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&Benchmark, usize) -> T + Sync,
{
    let cells: Vec<(&Benchmark, usize)> = benchmarks
        .iter()
        .flat_map(|b| (0..configs).map(move |c| (b, c)))
        .collect();
    let mut flat = parallel::sweep_with_threads(threads, &cells, |&(b, c)| job(b, c));
    let mut rows = Vec::with_capacity(benchmarks.len());
    for _ in 0..benchmarks.len() {
        let rest = flat.split_off(configs.min(flat.len()));
        rows.push(flat);
        flat = rest;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn baseline_config_sizes() {
        assert_eq!(baseline_config(1 << 20).ways(), 8);
        assert_eq!(baseline_config(1 << 20).num_sets(), 2048);
        // 1.5 MB keeps 2048 sets with 12 ways.
        let c = baseline_config(3 << 19);
        assert_eq!(c.num_sets(), 2048);
        assert_eq!(c.ways(), 12);
        assert_eq!(c.size_bytes(), 3 << 19);
        assert_eq!(baseline_config(2 << 20).ways(), 8);
    }

    #[test]
    fn run_produces_consistent_stats() {
        let b = spec2000::by_name("twolf").unwrap();
        let r = run_baseline(&b, &RunConfig::quick(), 1 << 20);
        assert_eq!(r.benchmark, "twolf");
        assert!(r.l2.accesses > 0);
        assert!(r.mpki > 0.0);
        assert_eq!(
            r.l2.hits() + r.l2.demand_misses(),
            r.l2.accesses,
            "every access is a hit or a miss"
        );
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let b = spec2000::by_name("mcf").unwrap();
        let cfg = RunConfig::quick();
        let r1 = run_baseline(&b, &cfg, 1 << 20);
        let r2 = run_baseline(&b, &cfg, 1 << 20);
        assert_eq!(r1.mpki, r2.mpki);
        assert_eq!(r1.l2.line_misses, r2.l2.line_misses);
    }

    #[test]
    fn warmup_is_excluded_but_keeps_the_cache_warm() {
        let b = spec2000::by_name("twolf").unwrap();
        let cold = run_baseline(&b, &RunConfig::quick(), 1 << 20);
        let warm = run_baseline(&b, &RunConfig::quick().with_warmup(400_000), 1 << 20);
        // Same measured length, but the warm run skips the cold-start
        // misses: measured MPKI must drop.
        assert!(
            warm.mpki < cold.mpki,
            "warm {} should be below cold {}",
            warm.mpki,
            cold.mpki
        );
        // And the counters really were reset: accesses reflect only the
        // measured phase (L2 accesses ≤ total accesses issued).
        assert!(warm.l2.accesses <= RunConfig::quick().accesses);
    }

    #[test]
    fn capacity_sweep_matches_direct_baseline_runs_bit_for_bit() {
        let b = spec2000::by_name("twolf").unwrap();
        let cfg = RunConfig::quick();
        let sizes = [1 << 20, 3 << 19, 2 << 20];
        let sweep = run_capacity_sweep(&b, &cfg, &sizes);
        for &size in &sizes {
            let (direct, words) = run_baseline_with_words(&b, &cfg, size);
            let p = sweep.point(size).unwrap();
            assert_eq!(p.mpki.to_bits(), direct.mpki.to_bits(), "mpki at {size}");
            assert_eq!(p.result.accesses, direct.l2.accesses);
            assert_eq!(p.result.line_misses, direct.l2.line_misses);
            assert_eq!(p.result.hits, direct.l2.loc_hits);
            assert_eq!(p.result.compulsory_misses, direct.l2.compulsory_misses);
            assert_eq!(p.result.evictions, direct.l2.evictions);
            assert_eq!(p.result.writebacks, direct.l2.writebacks);
            assert_eq!(p.result.words_used_at_evict, direct.l2.words_used_at_evict);
            assert_eq!(
                p.result.words_used_with_resident, words,
                "resident at {size}"
            );
            assert_eq!(sweep.hierarchy, direct.hierarchy);
        }
    }

    #[test]
    fn capacity_sweep_respects_warmup() {
        let b = spec2000::by_name("mcf").unwrap();
        let cfg = RunConfig::quick().with_warmup(100_000);
        let sweep = run_capacity_sweep(&b, &cfg, &[1 << 20]);
        let direct = run_baseline(&b, &cfg, 1 << 20);
        let p = sweep.point(1 << 20).unwrap();
        assert_eq!(p.mpki.to_bits(), direct.mpki.to_bits());
        assert_eq!(p.result.line_misses, direct.l2.line_misses);
        assert_eq!(p.result.compulsory_misses, direct.l2.compulsory_misses);
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let benches = spec2000::memory_intensive();
        let names = for_each_benchmark(&benches[..4], |b| b.name.to_owned());
        assert_eq!(names, vec!["art", "mcf", "twolf", "vpr"]);
    }
}
