//! Section 7.5: latency and energy costs of distillation.
//!
//! The per-access constants come from the paper's Cacti 3.2 runs (3.06 nJ
//! LOC tags, +3.76 nJ WOC tags, 0.14 ns extra tag delay); the aggregate
//! energy is computed from simulated activity, showing when the removed
//! DRAM fetches pay for the extra tag probes.

use crate::report::{fmt_f, fmt_pct, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_distill::{CostModel, DistillCache, DistillConfig};
use ldis_workloads::memory_intensive;

/// Per-benchmark energy of the baseline and distill configurations.
#[derive(Clone, Debug)]
pub struct CostsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline total energy (mJ).
    pub base_mj: f64,
    /// Distill total energy (mJ).
    pub distill_mj: f64,
    /// Distill tag-store share of its total (percent).
    pub distill_tag_share_pct: f64,
}

/// Runs the energy comparison.
pub fn data(cfg: &RunConfig) -> Vec<CostsRow> {
    let model = CostModel::default();
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let dist = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let be = model.baseline_energy(&base.l2);
        let de = model.distill_energy(&dist.l2);
        CostsRow {
            benchmark: b.name.to_owned(),
            base_mj: be.total_mj(),
            distill_mj: de.total_mj(),
            distill_tag_share_pct: de.tags_mj / de.total_mj() * 100.0,
        }
    })
}

/// Renders the Section 7.5 report (latency constants + energy table).
pub fn report(rows: &[CostsRow]) -> String {
    let model = CostModel::default();
    let mut t = Table::new(
        "Section 7.5: distillation costs — L2+DRAM energy per run (Cacti constants)",
        &["bench", "base-mJ", "distill-mJ", "delta", "tag-share"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base_mj, 2),
            fmt_f(r.distill_mj, 2),
            fmt_pct((r.distill_mj - r.base_mj) / r.base_mj * 100.0),
            format!("{}%", fmt_f(r.distill_tag_share_pct, 1)),
        ]);
    }
    t.note(format!(
        "per access: LOC tags {} nJ, WOC tags +{} nJ (probed in parallel); extra tag delay {} ns -> +1 cycle",
        model.loc_tag_nj, model.woc_tag_nj, model.extra_tag_ns
    ));
    t.note("energy falls wherever removed DRAM fetches outweigh the extra tag probes");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn miss_heavy_benchmarks_save_energy_under_ldis() {
        let b = spec2000::by_name("health").unwrap();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let model = CostModel::default();
        let base = run_baseline(&b, &cfg, 1 << 20);
        let dist = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let be = model.baseline_energy(&base.l2).total_mj();
        let de = model.distill_energy(&dist.l2).total_mj();
        assert!(
            de < be,
            "health: removed fetches should pay for the tags ({de} vs {be})"
        );
    }

    #[test]
    fn hit_dominated_benchmarks_pay_for_the_tags() {
        let b = spec2000::by_name("apsi").unwrap();
        let cfg = RunConfig::quick().with_accesses(300_000);
        let model = CostModel::default();
        let base = run_baseline(&b, &cfg, 1 << 20);
        let dist = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let be = model.baseline_energy(&base.l2);
        let de = model.distill_energy(&dist.l2);
        assert!(de.tags_mj > be.tags_mj, "distill always probes more tags");
    }

    #[test]
    fn report_renders() {
        let rows = vec![CostsRow {
            benchmark: "x".into(),
            base_mj: 2.0,
            distill_mj: 1.5,
            distill_tag_share_pct: 30.0,
        }];
        let s = report(&rows);
        assert!(s.contains("3.76"));
        assert!(s.contains("tag-share"));
    }
}
