//! Figure 9: system IPC improvement with the distill cache.

use crate::report::{fmt_f, fmt_pct, Table};
use crate::{baseline_config, for_each_benchmark, RunConfig};
use ldis_cache::BaselineL2;
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::stats::{gmean_percent, percent_improvement};
use ldis_timing::{workload_factors, L2Timing, SystemConfig, TimingSim};
use ldis_workloads::memory_intensive;

/// IPC of the baseline and distill systems for one benchmark.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// Distill-cache IPC (with +1 tag cycle, +2 rearrangement cycles).
    pub distill_ipc: f64,
}

impl Fig9Row {
    /// Percentage IPC improvement.
    pub fn improvement(&self) -> f64 {
        percent_improvement(self.base_ipc, self.distill_ipc)
    }
}

/// Runs the Figure 9 matrix: both timed systems per benchmark.
pub fn data(cfg: &RunConfig) -> Vec<Fig9Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let (dep, br) = workload_factors(b.name);
        let sys = SystemConfig::hpca2007_baseline().with_workload_factors(dep, br);

        let l2 = BaselineL2::new(baseline_config(1 << 20));
        let mut base_sim = TimingSim::new(l2, sys, L2Timing::baseline());
        let base = base_sim.run(&mut (b.make)(cfg.seed), cfg.accesses);

        let dc = DistillCache::new(DistillConfig::hpca2007_default());
        let mut dist_sim = TimingSim::new(dc, sys, L2Timing::distill());
        let dist = dist_sim.run(&mut (b.make)(cfg.seed), cfg.accesses);

        Fig9Row {
            benchmark: b.name.to_owned(),
            base_ipc: base.ipc(),
            distill_ipc: dist.ipc(),
        }
    })
}

/// Geometric mean of the per-benchmark IPC improvements (the paper's
/// `gmean` bar).
pub fn gmean_improvement(rows: &[Fig9Row]) -> f64 {
    let imps: Vec<f64> = rows.iter().map(Fig9Row::improvement).collect();
    gmean_percent(&imps)
}

/// Renders the Figure 9 report.
pub fn report(rows: &[Fig9Row]) -> String {
    let mut t = Table::new(
        "Figure 9: system IPC improvement with the distill cache",
        &["bench", "base-ipc", "distill-ipc", "improvement"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base_ipc, 3),
            fmt_f(r.distill_ipc, 3),
            fmt_pct(r.improvement()),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        String::new(),
        String::new(),
        fmt_pct(gmean_improvement(rows)),
    ]);
    t.note("paper: gmean +12%; art/mcf/twolf/ammp/health above +30%; gcc slightly negative (extra tag cycle)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    fn ipc_pair(name: &str, accesses: u64) -> Fig9Row {
        let b = spec2000::by_name(name).unwrap();
        let cfg = RunConfig::quick().with_accesses(accesses);
        let rows = for_each_benchmark(&[b], |b| {
            let (dep, br) = workload_factors(b.name);
            let sys = SystemConfig::hpca2007_baseline().with_workload_factors(dep, br);
            let l2 = BaselineL2::new(baseline_config(1 << 20));
            let base = TimingSim::new(l2, sys, L2Timing::baseline())
                .run(&mut (b.make)(cfg.seed), cfg.accesses);
            let dc = DistillCache::new(DistillConfig::hpca2007_default());
            let dist = TimingSim::new(dc, sys, L2Timing::distill())
                .run(&mut (b.make)(cfg.seed), cfg.accesses);
            Fig9Row {
                benchmark: b.name.to_owned(),
                base_ipc: base.ipc(),
                distill_ipc: dist.ipc(),
            }
        });
        rows.into_iter().next().unwrap()
    }

    #[test]
    fn health_ipc_improves_substantially() {
        let r = ipc_pair("health", 300_000);
        assert!(
            r.improvement() > 15.0,
            "health IPC improvement {} too small",
            r.improvement()
        );
    }

    #[test]
    fn swim_ipc_roughly_flat_with_reverter() {
        let r = ipc_pair("swim", 300_000);
        assert!(
            r.improvement() > -12.0,
            "reverter should keep swim's loss small, got {}",
            r.improvement()
        );
    }

    #[test]
    fn gmean_math() {
        let rows = vec![
            Fig9Row {
                benchmark: "a".into(),
                base_ipc: 1.0,
                distill_ipc: 1.1,
            },
            Fig9Row {
                benchmark: "b".into(),
                base_ipc: 2.0,
                distill_ipc: 2.2,
            },
        ];
        let g = gmean_improvement(&rows);
        assert!((g - 10.0).abs() < 1e-9, "gmean {g}");
        assert!(report(&rows).contains("gmean"));
    }
}
