//! The full-matrix sweep experiment with crash-safe execution.
//!
//! `ldis-experiments sweep` runs every benchmark the repo models — the 16
//! memory-intensive SPEC2000 workloads of Table 2 plus the 11
//! cache-insensitive ones — against the three headline configurations
//! (`baseline`, `LDIS-Base`, `LDIS-MT-RC`), 81 cells in canonical matrix
//! order. Unlike the per-figure experiments, the sweep runs on the
//! crash-safe executor ([`crate::exec`]):
//!
//! * `--journal FILE` checkpoints every completed cell through the
//!   checksummed [`journal`](crate::exec::journal);
//! * `--resume` validates and replays the journal, re-executing only the
//!   missing cells — the final snapshot is bit-identical to an
//!   uninterrupted run at any thread count;
//! * `--cell-timeout MS`, `--max-retries N` and `--fault SPEC` control
//!   the watchdog, the retry budget and deterministic fault injection;
//! * failed cells are quarantined, reported (and written to
//!   `--quarantine FILE` as JSON) with a shortest-repro command each,
//!   while the golden comparison degrades gracefully to the survivors
//!   ([`crate::golden::verify_surviving`]).

use crate::exec::journal::{Journal, JournalHeader};
use crate::exec::{run_cells, ExecPolicy, ExecReport, FaultPlan};
use crate::golden;
use crate::report::{fmt_f, Json, Table};
use crate::{run, run_baseline, RunConfig, RunResult};
use ldis_distill::{CellFailure, DistillCache, DistillConfig};
use ldis_mem::{fnv1a, SimRng};
use ldis_workloads::{cache_insensitive, memory_intensive, Benchmark};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The three L2 organizations the sweep compares. The ordering is part of
/// the canonical cell order and therefore frozen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepConfig {
    /// Traditional 1 MB 8-way L2.
    Baseline,
    /// All used words distilled into the WOC, no reverter.
    LdisBase,
    /// Median-threshold filtering plus the reverter (the paper's best).
    LdisMtRc,
}

/// The sweep's configurations in canonical order.
pub const CONFIGS: [SweepConfig; 3] = [
    SweepConfig::Baseline,
    SweepConfig::LdisBase,
    SweepConfig::LdisMtRc,
];

impl SweepConfig {
    /// The configuration's report label (identical to the L2's
    /// `name()`, so derived cell seeds match direct `run_*` calls).
    pub fn label(self) -> &'static str {
        match self {
            SweepConfig::Baseline => "baseline",
            SweepConfig::LdisBase => "LDIS-Base",
            SweepConfig::LdisMtRc => "LDIS-MT-RC",
        }
    }
}

/// One cell of the sweep matrix: a benchmark × configuration pair.
#[derive(Clone, Copy, Debug)]
pub struct CellSpec {
    /// The workload.
    pub benchmark: Benchmark,
    /// The L2 organization.
    pub config: SweepConfig,
}

impl CellSpec {
    /// The cell's derived workload seed (identical to what a direct
    /// [`run`] of the same pair would use).
    pub fn seed(&self, cfg: &RunConfig) -> u64 {
        cfg.seed_for(&self.benchmark, self.config.label())
    }

    /// `bench/config`, the row key used in snapshots and reports.
    pub fn key(&self) -> String {
        format!("{}/{}", self.benchmark.name, self.config.label())
    }
}

/// Every benchmark the sweep covers: the memory-intensive suite followed
/// by the cache-insensitive suite, in their frozen id orders.
pub fn benchmarks() -> Vec<Benchmark> {
    let mut all = memory_intensive();
    all.extend(cache_insensitive());
    all
}

/// The matrix cells in canonical order: benchmarks outer, configurations
/// inner. Cell indices are stable as long as the benchmark list and
/// [`CONFIGS`] are — which their frozen ids guarantee.
pub fn cells() -> Vec<CellSpec> {
    let mut out = Vec::new();
    for benchmark in benchmarks() {
        for config in CONFIGS {
            out.push(CellSpec { benchmark, config });
        }
    }
    out
}

/// The matrix identity a checkpoint journal is bound to: a seed-derived
/// hash of the run parameters and the full cell list. Any change to the
/// seed, budget, benchmark set or configuration set changes the id, so
/// [`Journal::resume`] refuses checkpoints that do not describe this
/// exact matrix.
pub fn matrix_id(cfg: &RunConfig) -> u64 {
    let mut shape = String::new();
    for cell in cells() {
        shape.push_str(&cell.key());
        shape.push('\n');
    }
    SimRng::derive_seed_chain(
        cfg.seed,
        &[cfg.accesses, cfg.warmup, fnv1a(shape.as_bytes())],
    )
}

/// The journal header for a run.
pub fn header(cfg: &RunConfig) -> JournalHeader {
    JournalHeader {
        matrix_id: matrix_id(cfg),
        cells: cells().len() as u64,
    }
}

/// Runs one cell directly (the repro path behind `sweep --cell N`).
pub fn run_cell(spec: &CellSpec, cfg: &RunConfig) -> RunResult {
    match spec.config {
        SweepConfig::Baseline => run_baseline(&spec.benchmark, cfg, 1 << 20),
        SweepConfig::LdisBase => run(&spec.benchmark, cfg, || {
            DistillCache::new(DistillConfig::ldis_base())
        }),
        SweepConfig::LdisMtRc => run(&spec.benchmark, cfg, || {
            DistillCache::new(DistillConfig::ldis_mt_rc())
        }),
    }
}

/// The sweep's golden snapshot: one row per cell in canonical order.
/// Built only from cell *results*, so a resumed run and an uninterrupted
/// run render identical bytes. Quarantined cells render as a failure
/// marker row; the graceful-degradation comparison
/// ([`golden::verify_surviving`]) skips exactly those rows.
pub fn snapshot(outcomes: &[Result<RunResult, CellFailure>]) -> Json {
    let specs = cells();
    let rows: Vec<Json> = specs
        .iter()
        .zip(outcomes)
        .map(|(spec, outcome)| match outcome {
            Ok(r) => Json::obj([
                ("key", Json::str(spec.key())),
                ("mpki", Json::num(r.mpki)),
                ("l2_hits", Json::uint(r.l2.hits())),
                ("l2_misses", Json::uint(r.l2.demand_misses())),
                ("evictions", Json::uint(r.l2.evictions)),
                ("woc_installs", Json::uint(r.l2.woc_installs)),
                ("instructions", Json::uint(r.hierarchy.instructions)),
            ]),
            Err(failure) => Json::obj([
                ("key", Json::str(spec.key())),
                ("quarantined", Json::str(failure.kind())),
            ]),
        })
        .collect();
    let quarantined = outcomes.iter().filter(|o| o.is_err()).count();
    Json::obj([
        ("experiment", Json::str("sweep")),
        ("cells", Json::uint(outcomes.len() as u64)),
        ("quarantined", Json::uint(quarantined as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Row keys of quarantined cells (the skip list for
/// [`golden::verify_surviving`]).
pub fn quarantined_keys(outcomes: &[Result<RunResult, CellFailure>]) -> Vec<String> {
    cells()
        .iter()
        .zip(outcomes)
        .filter(|(_, o)| o.is_err())
        .map(|(spec, _)| spec.key())
        .collect()
}

/// The machine-readable quarantine report: every failed cell with its
/// typed cause, derived seed and a shortest repro command.
pub fn quarantine_report(cfg: &RunConfig, report: &ExecReport<RunResult>) -> Json {
    let specs = cells();
    let entries: Vec<Json> = report
        .failures()
        .filter_map(|(cell, failure)| {
            let spec = specs.get(cell)?;
            Some(Json::obj([
                ("cell", Json::uint(cell as u64)),
                ("benchmark", Json::str(spec.benchmark.name)),
                ("config", Json::str(spec.config.label())),
                ("seed", Json::uint(spec.seed(cfg))),
                ("kind", Json::str(failure.kind())),
                ("attempts", Json::uint(u64::from(failure.attempts()))),
                ("detail", Json::str(failure.to_string())),
                (
                    "repro",
                    Json::str(format!(
                        "ldis-experiments sweep --cell {cell} --accesses {} --warmup {} --seed {} --threads 1",
                        cfg.accesses, cfg.warmup, cfg.seed
                    )),
                ),
            ]))
        })
        .collect();
    Json::obj([
        ("report", Json::str("sweep-quarantine")),
        ("matrix_id", Json::uint(matrix_id(cfg))),
        ("total_cells", Json::uint(specs.len() as u64)),
        ("resumed", Json::uint(report.resumed as u64)),
        ("executed", Json::uint(report.executed as u64)),
        ("retried", Json::uint(report.retried as u64)),
        ("quarantined", Json::arr(entries)),
    ])
}

/// Everything `ldis-experiments sweep` can be asked to do.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Run length, warmup and seed.
    pub cfg: RunConfig,
    /// Worker thread count.
    pub threads: usize,
    /// Retry budget for panicked cells.
    pub max_retries: u32,
    /// Watchdog budget per cell (`None` disables the watchdog).
    pub cell_timeout_ms: Option<u64>,
    /// Injected faults (`--fault CELL:KIND[:ATTEMPTS],...`).
    pub faults: FaultPlan,
    /// Checkpoint journal path (`--journal`).
    pub journal: Option<PathBuf>,
    /// Resume from the journal instead of truncating it (`--resume`).
    pub resume: bool,
    /// Write the snapshot JSON here (`--out`).
    pub out: Option<PathBuf>,
    /// Write the quarantine report JSON here (`--quarantine`).
    pub quarantine_out: Option<PathBuf>,
    /// Run a single cell inline and report it (`--cell N`, the repro
    /// path printed by quarantine reports).
    pub only_cell: Option<usize>,
    /// Compare the snapshot against the committed golden, degrading to
    /// surviving cells (`--golden-check`).
    pub golden_check: bool,
}

impl SweepOptions {
    /// Defaults for `cfg`: configured thread count, 2 retries, no
    /// watchdog, no faults, no journal.
    pub fn new(cfg: RunConfig, threads: usize) -> Self {
        SweepOptions {
            cfg,
            threads,
            max_retries: 2,
            cell_timeout_ms: None,
            faults: FaultPlan::none(),
            journal: None,
            resume: false,
            out: None,
            quarantine_out: None,
            only_cell: None,
            golden_check: false,
        }
    }
}

/// The outcome of [`execute`]: the rendered human report plus the pieces
/// tests and the binary act on.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The rendered report.
    pub text: String,
    /// The snapshot (`None` for `--cell` repro runs).
    pub snapshot: Json,
    /// Number of quarantined cells.
    pub quarantined: usize,
}

/// Runs the sweep per `opts`.
///
/// # Errors
///
/// Returns a message for CLI-level failures: unreadable or mismatched
/// journals, unwritable outputs, an out-of-range `--cell`, or a failed
/// `--golden-check`. Quarantined cells are *not* an error — the report
/// lists them and the run completes.
pub fn execute(opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let specs = cells();

    // Single-cell repro path: run inline, no journal, no quarantine.
    if let Some(cell) = opts.only_cell {
        let Some(spec) = specs.get(cell) else {
            return Err(format!(
                "--cell {cell} out of range: the matrix has {} cells",
                specs.len()
            ));
        };
        let result = run_cell(spec, &opts.cfg);
        let mut t = Table::new(
            format!("Sweep cell {cell}: {}", spec.key()),
            &["field", "value"],
        );
        t.row(vec!["seed".into(), format!("{:#x}", spec.seed(&opts.cfg))]);
        t.row(vec!["mpki".into(), fmt_f(result.mpki, 4)]);
        t.row(vec!["l2 hits".into(), result.l2.hits().to_string()]);
        t.row(vec![
            "l2 misses".into(),
            result.l2.demand_misses().to_string(),
        ]);
        t.row(vec!["evictions".into(), result.l2.evictions.to_string()]);
        let snap = Json::obj([
            ("experiment", Json::str("sweep-cell")),
            ("cell", Json::uint(cell as u64)),
            ("key", Json::str(spec.key())),
            ("seed", Json::uint(spec.seed(&opts.cfg))),
            ("mpki", Json::num(result.mpki)),
            ("l2_hits", Json::uint(result.l2.hits())),
            ("l2_misses", Json::uint(result.l2.demand_misses())),
        ]);
        return Ok(SweepOutcome {
            text: t.render(),
            snapshot: snap,
            quarantined: 0,
        });
    }

    // Open the journal (fresh, or resumed with its completed cells).
    let hdr = header(&opts.cfg);
    let mut completed: BTreeMap<usize, RunResult> = BTreeMap::new();
    let mut journal = None;
    let mut resume_note = None;
    if let Some(path) = &opts.journal {
        if opts.resume && path.exists() {
            let resumed = Journal::resume::<RunResult>(path, hdr)?;
            if resumed.discarded_bytes > 0 {
                resume_note = Some(format!(
                    "journal: discarded {} corrupt trailing byte(s) ({}); re-executing those cells",
                    resumed.discarded_bytes,
                    resumed.discard_reason.unwrap_or_default(),
                ));
            }
            completed = resumed.completed;
            journal = Some(resumed.journal);
        } else {
            journal = Some(Journal::create(path, hdr)?);
        }
    }

    // Run the missing cells crash-safely, checkpointing as they finish.
    let policy = ExecPolicy {
        threads: opts.threads,
        max_retries: opts.max_retries,
        cell_timeout_ms: opts.cell_timeout_ms,
        faults: opts.faults.clone(),
    };
    let cfg = opts.cfg;
    let mut journal_error: Option<String> = None;
    let report = run_cells(
        specs.clone(),
        move |_cell, spec: &CellSpec| run_cell(spec, &cfg),
        &policy,
        completed,
        |cell, result| {
            if let Some(j) = journal.as_mut() {
                if let Err(e) = j.append(cell, specs_seed(&cfg, cell), result) {
                    journal_error.get_or_insert(e);
                }
            }
        },
    );
    if let Some(e) = journal_error {
        return Err(e);
    }

    // Render the human report: per-benchmark MPKI columns plus the
    // quarantine summary.
    let snapshot_json = snapshot(&report.outcomes);
    let quarantine = quarantine_report(&opts.cfg, &report);
    let mut t = Table::new(
        "Sweep: 27 benchmarks x 3 configurations (crash-safe)",
        &["bench", "baseline", "LDIS-Base", "LDIS-MT-RC"],
    );
    for (bench_index, benchmark) in benchmarks().iter().enumerate() {
        let cell_for = |config_index: usize| bench_index * CONFIGS.len() + config_index;
        let fmt = |config_index: usize| match report.outcomes.get(cell_for(config_index)) {
            Some(Ok(r)) => fmt_f(r.mpki, 2),
            Some(Err(f)) => format!("[{}]", f.kind()),
            None => "[missing]".to_owned(),
        };
        t.row(vec![benchmark.name.to_owned(), fmt(0), fmt(1), fmt(2)]);
    }
    t.note(format!(
        "{} cells: {} resumed, {} executed, {} retried, {} quarantined",
        report.outcomes.len(),
        report.resumed,
        report.executed,
        report.retried,
        report.failed(),
    ));
    if let Some(note) = resume_note {
        t.note(note);
    }
    for (cell, failure) in report.failures() {
        let key = cells().get(cell).map(CellSpec::key).unwrap_or_default();
        t.note(format!(
            "quarantined cell {cell} ({key}): {failure}; repro: ldis-experiments sweep \
             --cell {cell} --accesses {} --warmup {} --seed {} --threads 1",
            opts.cfg.accesses, opts.cfg.warmup, opts.cfg.seed
        ));
    }

    // Optional outputs.
    if let Some(path) = &opts.out {
        std::fs::write(path, snapshot_json.render_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.quarantine_out {
        std::fs::write(path, quarantine.render_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    // Graceful-degradation golden comparison: survivors must match the
    // committed snapshot; quarantined rows are listed, not compared.
    if opts.golden_check {
        let skipped = quarantined_keys(&report.outcomes);
        golden::verify_surviving("sweep", &snapshot_json, &skipped)?;
        t.note(if skipped.is_empty() {
            "golden check: all rows match".to_owned()
        } else {
            format!(
                "golden check: surviving rows match; skipped quarantined rows: {}",
                skipped.join(", ")
            )
        });
    }

    Ok(SweepOutcome {
        text: t.render(),
        snapshot: snapshot_json,
        quarantined: report.failed(),
    })
}

/// The derived seed of cell `cell` (helper for journal appends, where
/// the spec list is no longer borrowable).
fn specs_seed(cfg: &RunConfig, cell: usize) -> u64 {
    cells().get(cell).map(|s| s.seed(cfg)).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_81_cells_in_frozen_order() {
        let specs = cells();
        assert_eq!(specs.len(), 81);
        assert_eq!(specs[0].key(), "art/baseline");
        assert_eq!(specs[1].key(), "art/LDIS-Base");
        assert_eq!(specs[2].key(), "art/LDIS-MT-RC");
        // Cell index arithmetic used by the report and the CI fault specs.
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.config.label(), CONFIGS[i % 3].label());
        }
        // The insensitive suite follows the memory-intensive one.
        assert_eq!(specs[48].benchmark.id, 100);
    }

    #[test]
    fn matrix_id_binds_every_run_parameter() {
        let base = RunConfig::quick();
        let id = matrix_id(&base);
        assert_eq!(id, matrix_id(&base), "stable");
        let mut other = base;
        other.seed += 1;
        assert_ne!(id, matrix_id(&other), "seed is bound");
        let mut other = base;
        other.accesses += 1;
        assert_ne!(id, matrix_id(&other), "budget is bound");
        let mut other = base;
        other.warmup += 1;
        assert_ne!(id, matrix_id(&other), "warmup is bound");
    }

    #[test]
    fn cell_seeds_match_direct_runs() {
        // The sweep must derive exactly the seeds a direct run_* call
        // would, or resumed results could differ from the figures'.
        let cfg = RunConfig::quick();
        let specs = cells();
        let spec = specs
            .iter()
            .find(|s| s.benchmark.name == "mcf")
            .expect("mcf");
        assert_eq!(
            spec.seed(&cfg),
            cfg.seed_for(&spec.benchmark, spec.config.label())
        );
    }

    #[test]
    fn snapshot_marks_quarantined_rows() {
        let failure = CellFailure::Panicked {
            attempts: 3,
            message: "boom".into(),
        };
        let outcomes: Vec<Result<RunResult, CellFailure>> = vec![Err(failure)];
        let json = snapshot(&outcomes);
        let text = json.render();
        assert!(text.contains("\"quarantined\": 1"), "{text}");
        assert!(
            text.contains("{\"key\": \"art/baseline\", \"quarantined\": \"panicked\"}"),
            "{text}"
        );
    }

    #[test]
    fn out_of_range_cell_is_a_clean_error() {
        let opts = {
            let mut o = SweepOptions::new(RunConfig::quick(), 1);
            o.only_cell = Some(10_000);
            o
        };
        let err = execute(&opts).expect_err("must refuse");
        assert!(err.contains("out of range"), "{err}");
    }
}
