//! The motivation experiments, all derived from one baseline run per
//! benchmark: Figure 1 (words-used histogram), Figure 2 (recency position
//! before footprint change) and Table 2 (MPKI + compulsory misses).

use crate::report::{fmt_f, Json, Table};
use crate::{baseline_config, for_each_benchmark, run_baseline_with_words, RunConfig, RunResult};
use ldis_cache::BaselineL2;
use ldis_mem::stats::Histogram;
use ldis_timing::{workload_factors, L2Timing, SystemConfig, TimingSim};
use ldis_workloads::{memory_intensive, Benchmark};

/// One benchmark's baseline characterization.
#[derive(Clone, Debug)]
pub struct BaselineProfile {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of evicted data lines that used `k` words (index `k`,
    /// 0..=8) — Figure 1's histogram.
    pub words_used_fraction: Vec<f64>,
    /// Average words used per evicted line (Figure 1's per-benchmark
    /// annotation, Table 6's 1 MB column).
    pub avg_words_used: f64,
    /// Fraction of lines whose last footprint change happened at maximum
    /// recency position `p` (index `p`, 0..8) — Figure 2.
    pub recency_fraction: Vec<f64>,
    /// Misses per kilo-instruction (Table 2).
    pub mpki: f64,
    /// Percentage of misses that are compulsory (Table 2).
    pub compulsory_pct: f64,
    /// Paper reference values, for side-by-side reporting.
    pub paper_mpki: f64,
    /// Paper compulsory percentage (Table 2).
    pub paper_compulsory_pct: f64,
    /// Paper average words used at 1 MB (Table 6).
    pub paper_avg_words: f64,
}

fn profile_of(b: &Benchmark, r: &RunResult, hist: &Histogram) -> BaselineProfile {
    let words_used_fraction: Vec<f64> = (0..hist.len()).map(|i| hist.fraction(i)).collect();
    let rec = &r.l2.recency_before_change;
    let recency_fraction: Vec<f64> = (0..rec.len()).map(|i| rec.fraction(i)).collect();
    BaselineProfile {
        benchmark: b.name.to_owned(),
        avg_words_used: hist.mean(),
        words_used_fraction,
        recency_fraction,
        mpki: r.mpki,
        compulsory_pct: r.l2.compulsory_fraction() * 100.0,
        paper_mpki: b.paper_mpki,
        paper_compulsory_pct: b.paper_compulsory_pct,
        paper_avg_words: b.paper_avg_words,
    }
}

/// Runs the 1 MB baseline for every memory-intensive benchmark.
pub fn data(cfg: &RunConfig) -> Vec<BaselineProfile> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let (r, words) = run_baseline_with_words(b, cfg, 1 << 20);
        profile_of(b, &r, &words)
    })
}

/// The golden snapshot: per-benchmark baseline MPKI, timed-baseline IPC,
/// compulsory share and the full words-used footprint histogram, plus the
/// raw L2 counters, at the given configuration. Byte-stable for a given
/// seed; compared against `tests/golden/motivation.json`.
pub fn snapshot(cfg: &RunConfig) -> Json {
    let benches = memory_intensive();
    let rows = for_each_benchmark(&benches, |b| {
        let (r, words) = run_baseline_with_words(b, cfg, 1 << 20);
        let p = profile_of(b, &r, &words);
        // IPC of the timed baseline system (Figure 9's reference side),
        // on the same derived-seed convention as every sweep cell.
        let (dep, br) = workload_factors(b.name);
        let sys = SystemConfig::hpca2007_baseline().with_workload_factors(dep, br);
        let l2 = BaselineL2::new(baseline_config(1 << 20));
        let mut sim = TimingSim::new(l2, sys, L2Timing::baseline());
        let timed = sim.run(
            &mut (b.make)(cfg.seed_for(b, "baseline-timed")),
            cfg.accesses,
        );
        Json::obj([
            ("benchmark", Json::str(b.name)),
            ("mpki", Json::num(p.mpki)),
            ("ipc", Json::num(timed.ipc())),
            ("avg_words_used", Json::num(p.avg_words_used)),
            ("compulsory_pct", Json::num(p.compulsory_pct)),
            (
                "words_used_fraction",
                Json::arr(p.words_used_fraction.iter().copied().map(Json::num)),
            ),
            ("l2_accesses", Json::uint(r.l2.accesses)),
            ("l2_hits", Json::uint(r.l2.hits())),
            ("l2_line_misses", Json::uint(r.l2.line_misses)),
            ("l2_evictions", Json::uint(r.l2.evictions)),
            ("l2_writebacks", Json::uint(r.l2.writebacks)),
            ("instructions", Json::uint(r.hierarchy.instructions)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("motivation")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Figure 1: distribution of the words used in a cache line.
pub fn fig1_report(profiles: &[BaselineProfile]) -> String {
    let mut t = Table::new(
        "Figure 1: words used per evicted 64B line, 1MB 8-way baseline (fraction of lines)",
        &[
            "bench",
            "1w",
            "2w",
            "3w",
            "4w",
            "5w",
            "6w",
            "7w",
            "8w",
            "avg",
            "paper-avg",
        ],
    );
    for p in profiles {
        let mut cells = vec![p.benchmark.clone()];
        for k in 1..=8 {
            cells.push(fmt_f(
                p.words_used_fraction.get(k).copied().unwrap_or(0.0),
                2,
            ));
        }
        cells.push(fmt_f(p.avg_words_used, 2));
        cells.push(fmt_f(p.paper_avg_words, 2));
        t.row(cells);
    }
    t.note("paper: art/mcf use <2 words on average; facerec/galgel/apsi/wupwise near 7-8");
    t.render()
}

/// Figure 2: distribution of maximum recency position before
/// footprint-change.
pub fn fig2_report(profiles: &[BaselineProfile]) -> String {
    let mut t = Table::new(
        "Figure 2: max recency position before footprint-change (fraction of evicted lines)",
        &[
            "bench", "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p0-3",
        ],
    );
    let mut early_sum = 0.0;
    for p in profiles {
        let mut cells = vec![p.benchmark.clone()];
        for pos in 0..8 {
            cells.push(fmt_f(
                p.recency_fraction.get(pos).copied().unwrap_or(0.0),
                2,
            ));
        }
        let early: f64 = p.recency_fraction.iter().take(4).sum();
        early_sum += early;
        cells.push(fmt_f(early, 2));
        t.row(cells);
    }
    let avg_early = early_sum / profiles.len() as f64;
    t.note(format!(
        "average fraction of footprint changes at positions 0-3: {:.1}% (paper: 83%)",
        avg_early * 100.0
    ));
    t.render()
}

/// The average fraction of footprint changes occurring at recency
/// positions 0–3 (the paper's 83 % observation).
pub fn early_change_fraction(profiles: &[BaselineProfile]) -> f64 {
    let sum: f64 = profiles
        .iter()
        .map(|p| p.recency_fraction.iter().take(4).sum::<f64>())
        .sum();
    sum / profiles.len() as f64
}

/// Table 2: benchmark summary (MPKI, compulsory misses).
pub fn table2_report(profiles: &[BaselineProfile]) -> String {
    let mut t = Table::new(
        "Table 2: benchmark summary, 1MB 8-way baseline",
        &["bench", "mpki", "paper-mpki", "compulsory%", "paper-comp%"],
    );
    for p in profiles {
        t.row(vec![
            p.benchmark.clone(),
            fmt_f(p.mpki, 2),
            fmt_f(p.paper_mpki, 2),
            fmt_f(p.compulsory_pct, 1),
            fmt_f(p.paper_compulsory_pct, 1),
        ]);
    }
    t.note("synthetic models target the paper's ordering and magnitude class, not exact values");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profiles() -> Vec<BaselineProfile> {
        // A few benchmarks at reduced length keep the test fast.
        let benches: Vec<_> = memory_intensive()
            .into_iter()
            .filter(|b| matches!(b.name, "art" | "swim" | "apsi" | "health"))
            .collect();
        let cfg = RunConfig::quick();
        for_each_benchmark(&benches, |b| {
            let (r, words) = run_baseline_with_words(b, &cfg, 1 << 20);
            profile_of(b, &r, &words)
        })
    }

    #[test]
    fn sparse_benchmarks_use_fewer_words_than_dense() {
        let profiles = quick_profiles();
        let by_name = |n: &str| {
            profiles
                .iter()
                .find(|p| p.benchmark == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!(
            by_name("health").avg_words_used < 3.5,
            "health is sparse: {}",
            by_name("health").avg_words_used
        );
        assert!(
            by_name("apsi").avg_words_used > 6.0,
            "apsi is dense: {}",
            by_name("apsi").avg_words_used
        );
        assert!(by_name("art").avg_words_used < by_name("apsi").avg_words_used);
    }

    #[test]
    fn footprint_changes_concentrate_near_mru() {
        let profiles = quick_profiles();
        let early = early_change_fraction(&profiles);
        assert!(
            early > 0.6,
            "most footprint changes should happen at positions 0-3, got {early}"
        );
    }

    #[test]
    fn reports_render() {
        let profiles = quick_profiles();
        assert!(fig1_report(&profiles).contains("art"));
        assert!(fig2_report(&profiles).contains("p0-3"));
        assert!(table2_report(&profiles).contains("mpki"));
    }
}
