//! Ablations of the design choices DESIGN.md calls out: WOC way count,
//! distillation threshold policy, WOC replacement selection, reverter
//! leader-set count and word size.

use crate::report::{fmt_pct, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_distill::{DistillCache, DistillConfig, ReverterConfig, ThresholdPolicy, WocReplacement};
use ldis_mem::stats::percent_reduction;
use ldis_workloads::{memory_intensive, Benchmark};

/// A generic ablation result: mean-MPKI reduction per variant.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Ablation name.
    pub name: String,
    /// `(variant label, mean-MPKI reduction %)` pairs.
    pub variants: Vec<(String, f64)>,
}

/// A representative benchmark subset for ablations (covers sparse chase,
/// mixed, dense and the pathology).
fn subset() -> Vec<Benchmark> {
    memory_intensive()
        .into_iter()
        .filter(|b| {
            matches!(
                b.name,
                "health" | "twolf" | "galgel" | "swim" | "ammp" | "art"
            )
        })
        .collect()
}

fn mean_reduction<F>(cfg: &RunConfig, make: F) -> f64
where
    F: Fn() -> DistillCache + Sync,
{
    let benches = subset();
    let pairs = for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let d = run(b, cfg, &make);
        (base.mpki, d.mpki)
    });
    let base: f64 = pairs.iter().map(|p| p.0).sum::<f64>();
    let dist: f64 = pairs.iter().map(|p| p.1).sum::<f64>();
    percent_reduction(base, dist)
}

/// WOC way count: 1, 2 (paper) or 3 of 8 ways.
pub fn woc_ways(cfg: &RunConfig) -> Ablation {
    let variants = [1u32, 2, 3]
        .iter()
        .map(|&w| {
            let red = mean_reduction(cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default().with_woc_ways(w))
            });
            (format!("{w} WOC ways"), red)
        })
        .collect();
    Ablation {
        name: "WOC way count".into(),
        variants,
    }
}

/// Threshold policy: none (LDIS-Base), fixed K in {2, 4, 6}, median.
pub fn threshold_policy(cfg: &RunConfig) -> Ablation {
    let mut variants = Vec::new();
    let with_policy = |p: ThresholdPolicy| DistillConfig::hpca2007_default().with_policy(p);
    variants.push((
        "all (no threshold)".to_owned(),
        mean_reduction(cfg, || DistillCache::new(with_policy(ThresholdPolicy::All))),
    ));
    for k in [2u8, 4, 6] {
        variants.push((
            format!("fixed K={k}"),
            mean_reduction(cfg, || {
                DistillCache::new(with_policy(ThresholdPolicy::Fixed(k)))
            }),
        ));
    }
    variants.push((
        "median".to_owned(),
        mean_reduction(cfg, || {
            DistillCache::new(with_policy(ThresholdPolicy::median()))
        }),
    ));
    Ablation {
        name: "distillation threshold policy".into(),
        variants,
    }
}

/// WOC replacement candidate selection: random (paper) vs. round-robin.
pub fn woc_replacement(cfg: &RunConfig) -> Ablation {
    let variants = [
        ("random", WocReplacement::Random),
        ("round-robin", WocReplacement::RoundRobin),
    ]
    .iter()
    .map(|(label, policy)| {
        let red = mean_reduction(cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default().with_woc_replacement(*policy))
        });
        ((*label).to_owned(), red)
    })
    .collect();
    Ablation {
        name: "WOC replacement selection".into(),
        variants,
    }
}

/// Reverter leader-set count: 8, 32 (paper), 128.
pub fn leader_sets(cfg: &RunConfig) -> Ablation {
    let variants = [8u32, 32, 128]
        .iter()
        .map(|&n| {
            let red = mean_reduction(cfg, || {
                DistillCache::new(DistillConfig::ldis_mt().with_reverter(ReverterConfig {
                    leader_sets: n,
                    ..ReverterConfig::default()
                }))
            });
            (format!("{n} leader sets"), red)
        })
        .collect();
    Ablation {
        name: "reverter leader sets".into(),
        variants,
    }
}

/// Renders an ablation as a table.
pub fn report(ablation: &Ablation) -> String {
    let mut t = Table::new(
        format!("Ablation: {}", ablation.name),
        &["variant", "mean-MPKI reduction"],
    );
    for (label, red) in &ablation.variants {
        t.row(vec![label.clone(), fmt_pct(*red)]);
    }
    t.render()
}

/// Runs every ablation and concatenates the reports.
pub fn all(cfg: &RunConfig) -> String {
    [
        woc_ways(cfg),
        threshold_policy(cfg),
        woc_replacement(cfg),
        leader_sets(cfg),
    ]
    .iter()
    .map(report)
    .collect::<Vec<_>>()
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_and_round_robin_are_similar() {
        // The paper's footnote: random selection has similar performance
        // to ordered selection.
        let cfg = RunConfig::quick().with_accesses(250_000);
        let a = woc_replacement(&cfg);
        let random = a.variants[0].1;
        let rr = a.variants[1].1;
        assert!(
            (random - rr).abs() < 10.0,
            "random {random}% vs round-robin {rr}% should be similar"
        );
    }

    #[test]
    fn two_woc_ways_is_a_sweet_spot_over_one() {
        let cfg = RunConfig::quick().with_accesses(250_000);
        let a = woc_ways(&cfg);
        let one = a.variants[0].1;
        let two = a.variants[1].1;
        assert!(
            two > one - 3.0,
            "2 WOC ways ({two}%) should not lose to 1 ({one}%)"
        );
    }

    #[test]
    fn report_renders() {
        let a = Ablation {
            name: "demo".into(),
            variants: vec![("v1".into(), 10.0)],
        };
        assert!(report(&a).contains("demo"));
    }
}
