//! Figure 8: capacity analysis — the distill cache vs. larger traditional
//! caches.

use crate::report::{fmt_f, fmt_pct, Json, Table};
use crate::{for_each_benchmark, run, run_baseline, run_capacity_sweep, RunConfig};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::stats::percent_reduction;
use ldis_workloads::memory_intensive;

/// The traditional sizes of the Figure 8 comparison: 1, 1.5 and 2 MB.
const FIG8_SIZES: [u64; 3] = [1 << 20, 3 << 19, 2 << 20];

/// MPKI reductions over the 1 MB baseline for the distill cache and for
/// 1.5 MB / 2 MB traditional caches.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline 1 MB MPKI.
    pub base: f64,
    /// 1 MB distill-cache reduction (%).
    pub distill: f64,
    /// 1.5 MB traditional reduction (%).
    pub trad_1_5mb: f64,
    /// 2 MB traditional reduction (%).
    pub trad_2mb: f64,
}

/// Runs the Figure 8 matrix. All three traditional sizes come from one
/// Mattson capacity sweep per benchmark
/// ([`run_capacity_sweep`](crate::run_capacity_sweep)); only the distill
/// point simulates directly. Bit-identical to [`data_direct`] — the
/// sweep-equivalence tests and the golden snapshot enforce it — with two
/// simulations per benchmark instead of four.
pub fn data(cfg: &RunConfig) -> Vec<Fig8Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let sweep = run_capacity_sweep(b, cfg, &FIG8_SIZES);
        let distill = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let base = sweep.mpki_at(1 << 20);
        Fig8Row {
            benchmark: b.name.to_owned(),
            base,
            distill: percent_reduction(base, distill.mpki),
            trad_1_5mb: percent_reduction(base, sweep.mpki_at(3 << 19)),
            trad_2mb: percent_reduction(base, sweep.mpki_at(2 << 20)),
        }
    })
}

/// The pre-rewire Figure 8 matrix: one direct baseline simulation per
/// traditional size. Kept as the reference side of the sweep-equivalence
/// tests (`tests/mrc_oracle.rs`) and the CI byte-identity gate.
pub fn data_direct(cfg: &RunConfig) -> Vec<Fig8Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let distill = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let t15 = run_baseline(b, cfg, 3 << 19);
        let t20 = run_baseline(b, cfg, 2 << 20);
        Fig8Row {
            benchmark: b.name.to_owned(),
            base: base.mpki,
            distill: percent_reduction(base.mpki, distill.mpki),
            trad_1_5mb: percent_reduction(base.mpki, t15.mpki),
            trad_2mb: percent_reduction(base.mpki, t20.mpki),
        }
    })
}

fn snapshot_of(rows: &[Fig8Row], cfg: &RunConfig) -> Json {
    let rows = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                ("base_mpki", Json::num(r.base)),
                ("distill_reduction_pct", Json::num(r.distill)),
                ("trad_1_5mb_reduction_pct", Json::num(r.trad_1_5mb)),
                ("trad_2mb_reduction_pct", Json::num(r.trad_2mb)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("experiment", Json::str("fig8")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("rows", Json::Arr(rows)),
    ])
}

/// The golden snapshot (compared against `tests/golden/fig8.json`),
/// computed through the single-pass capacity sweep.
pub fn snapshot(cfg: &RunConfig) -> Json {
    snapshot_of(&data(cfg), cfg)
}

/// The same snapshot computed through the pre-rewire direct simulations;
/// must render byte-identically to [`snapshot`] (the CI sweep-equivalence
/// gate asserts it).
pub fn snapshot_direct(cfg: &RunConfig) -> Json {
    snapshot_of(&data_direct(cfg), cfg)
}

/// Renders the Figure 8 report.
pub fn report(rows: &[Fig8Row]) -> String {
    let mut t = Table::new(
        "Figure 8: % MPKI reduction — 1MB distill vs. bigger traditional caches",
        &[
            "bench",
            "base-mpki",
            "DISTILL-1MB",
            "TRAD-1.5MB",
            "TRAD-2MB",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base, 2),
            fmt_pct(r.distill),
            fmt_pct(r.trad_1_5mb),
            fmt_pct(r.trad_2mb),
        ]);
    }
    t.note(
        "paper: distill ≈ 1.5MB for facerec/ammp/sixtrack; distill beats 2MB for mcf and health",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn bigger_caches_dont_hurt() {
        let b = spec2000::by_name("twolf").unwrap();
        let cfg = RunConfig::quick().with_accesses(300_000);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let t15 = run_baseline(&b, &cfg, 3 << 19);
        let t20 = run_baseline(&b, &cfg, 2 << 20);
        assert!(t15.mpki <= base.mpki * 1.02);
        assert!(t20.mpki <= t15.mpki * 1.02);
    }

    #[test]
    fn distill_beats_doubling_for_sparse_chases() {
        // health: 33k nodes at ~2.4 words. A 2MB cache holds all 33k lines
        // though — so run at the default working-set pressure and check the
        // paper's qualitative claim on mcf, whose set far exceeds 2MB.
        let b = spec2000::by_name("mcf").unwrap();
        let cfg = RunConfig::quick().with_accesses(500_000);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let distill = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let t20 = run_baseline(&b, &cfg, 2 << 20);
        let red_d = percent_reduction(base.mpki, distill.mpki);
        let red_2m = percent_reduction(base.mpki, t20.mpki);
        assert!(
            red_d > red_2m * 0.8,
            "mcf: distill {red_d}% should be at least comparable to 2MB {red_2m}%"
        );
    }

    #[test]
    fn report_renders() {
        let rows = vec![Fig8Row {
            benchmark: "x".into(),
            base: 5.0,
            distill: 30.0,
            trad_1_5mb: 25.0,
            trad_2mb: 40.0,
        }];
        assert!(report(&rows).contains("TRAD-2MB"));
    }
}
