//! Line-size sensitivity (Section 2's footnote and Section 7.5.1).
//!
//! The paper's footnote 2 observes that shrinking the line from 64 B to
//! 32 B increases misses for most benchmarks — the naive alternative to
//! distillation throws away spatial locality where it *does* exist. This
//! experiment reproduces that claim and contrasts it with LDIS at 64 B,
//! which gets the best of both.

use crate::report::{fmt_f, fmt_pct, Json, Table};
use crate::{run, run_matrix, RunConfig};
use ldis_cache::{BaselineL2, CacheConfig};
use ldis_distill::{DistillCache, DistillConfig, ReverterConfig, ThresholdPolicy};
use ldis_mem::stats::percent_reduction;
use ldis_mem::LineGeometry;
use ldis_workloads::memory_intensive;

/// Per-benchmark MPKI across line sizes plus LDIS at 64 B.
#[derive(Clone, Debug)]
pub struct LineSizeRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline 64 B MPKI.
    pub base_64b: f64,
    /// Change from moving to 32 B lines (%, negative = more misses).
    pub delta_32b: f64,
    /// Change from moving to 128 B lines (%).
    pub delta_128b: f64,
    /// Change from LDIS at 64 B (%).
    pub delta_ldis: f64,
    /// Change from LDIS at 128 B lines (%). Section 7.5.1: the unused-word
    /// problem — and so distillation's opportunity — grows with the line.
    pub delta_ldis_128b: f64,
}

fn baseline_with_lines(line_bytes: u32) -> BaselineL2 {
    let geom = LineGeometry::new(line_bytes, 8);
    BaselineL2::new(CacheConfig::new(1 << 20, 8, geom))
}

/// The five configurations of the line-size matrix, in column order.
const CONFIGS: usize = 5;

/// Runs the line-size matrix (1 MB 8-way at 32 B / 64 B / 128 B, plus
/// LDIS-MT-RC at 64 B and 128 B). Every one of the 16 × 5 cells is an
/// independent unit of parallel work on the sweep pool, so a single slow
/// benchmark cannot serialize its whole row.
pub fn data(cfg: &RunConfig) -> Vec<LineSizeRow> {
    let benches = memory_intensive();
    let matrix = run_matrix(&benches, CONFIGS, |b, config| match config {
        0 => run(b, cfg, || baseline_with_lines(64)),
        1 => run(b, cfg, || baseline_with_lines(32)),
        2 => run(b, cfg, || baseline_with_lines(128)),
        3 => run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        }),
        _ => run(b, cfg, || DistillCache::new(ldis_config_for_line(128))),
    });
    benches
        .iter()
        .zip(matrix)
        .map(|(b, cells)| {
            // The sweep produced exactly one cell per configuration above;
            // a missing cell would mean the matrix shape itself is broken.
            let mpki = |i: usize| cells.get(i).map_or(0.0, |c| c.mpki);
            let base = mpki(0);
            LineSizeRow {
                benchmark: b.name.to_owned(),
                base_64b: base,
                delta_32b: percent_reduction(base, mpki(1)),
                delta_128b: percent_reduction(base, mpki(2)),
                delta_ldis: percent_reduction(base, mpki(3)),
                delta_ldis_128b: percent_reduction(base, mpki(4)),
            }
        })
        .collect()
}

/// The golden snapshot: the full line-size sensitivity matrix (base MPKI
/// and all four deltas per benchmark) at the given configuration.
/// Compared against `tests/golden/linesize.json`.
pub fn snapshot(cfg: &RunConfig) -> Json {
    let rows = data(cfg).into_iter().map(|r| {
        Json::obj([
            ("benchmark", Json::str(r.benchmark)),
            ("base_64b_mpki", Json::num(r.base_64b)),
            ("delta_32b_pct", Json::num(r.delta_32b)),
            ("delta_128b_pct", Json::num(r.delta_128b)),
            ("delta_ldis_pct", Json::num(r.delta_ldis)),
            ("delta_ldis_128b_pct", Json::num(r.delta_ldis_128b)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("linesize")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("rows", Json::arr(rows)),
    ])
}

/// Builds an LDIS configuration for a non-default line size (used by the
/// extension study: distillation composes with any line size).
pub fn ldis_config_for_line(line_bytes: u32) -> DistillConfig {
    let geom = LineGeometry::new(line_bytes, line_bytes / 8);
    DistillConfig::new(1 << 20, 8, 2, geom)
        .with_policy(ThresholdPolicy::median())
        .with_reverter(ReverterConfig::default())
}

/// Renders the line-size report.
pub fn report(rows: &[LineSizeRow]) -> String {
    let mut t = Table::new(
        "Line-size sensitivity: % MPKI reduction vs. the 64B baseline (negative = worse)",
        &[
            "bench",
            "base-64B",
            "TRAD-32B",
            "TRAD-128B",
            "LDIS-64B",
            "LDIS-128B",
        ],
    );
    let mut worse_at_32 = 0;
    for r in rows {
        if r.delta_32b < 0.0 {
            worse_at_32 += 1;
        }
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base_64b, 2),
            fmt_pct(r.delta_32b),
            fmt_pct(r.delta_128b),
            fmt_pct(r.delta_ldis),
            fmt_pct(r.delta_ldis_128b),
        ]);
    }
    t.note(format!(
        "{worse_at_32}/{} benchmarks get worse at 32B (paper footnote 2: 'increases the cache misses for most of the benchmarks')",
        rows.len()
    ));
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn dense_benchmarks_suffer_at_32b() {
        // swim streams full lines: halving the line doubles its fetches.
        let b = spec2000::by_name("swim").unwrap();
        let cfg = RunConfig::quick().with_accesses(300_000);
        let b64 = run(&b, &cfg, || baseline_with_lines(64));
        let b32 = run(&b, &cfg, || baseline_with_lines(32));
        assert!(
            b32.mpki > b64.mpki * 1.5,
            "swim at 32B {} should be much worse than 64B {}",
            b32.mpki,
            b64.mpki
        );
    }

    #[test]
    fn ldis_beats_shrinking_the_line_on_sparse_chases() {
        // The naive fix for unused words — smaller lines — doesn't even
        // help health much: its 1–3-word clusters sit at arbitrary offsets
        // and often straddle 32B boundaries, doubling fetches. LDIS keeps
        // the 64B line and simply stops wasting space on the dead words.
        let b = spec2000::by_name("health").unwrap();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let b64 = run(&b, &cfg, || baseline_with_lines(64));
        let b32 = run(&b, &cfg, || baseline_with_lines(32));
        let ldis = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        assert!(
            ldis.mpki < b64.mpki,
            "LDIS at 64B must beat the 64B baseline"
        );
        assert!(
            ldis.mpki < b32.mpki,
            "LDIS at 64B ({}) must beat the 32B baseline ({})",
            ldis.mpki,
            b32.mpki
        );
    }

    #[test]
    fn ldis_composes_with_other_line_sizes() {
        let cfg128 = ldis_config_for_line(128);
        assert_eq!(cfg128.geometry().line_bytes(), 128);
        assert_eq!(cfg128.geometry().words_per_line(), 8);
        // It must at least construct and run.
        let mut dc = DistillCache::new(cfg128);
        use ldis_cache::{L2Request, SecondLevel};
        use ldis_mem::{LineAddr, WordIndex};
        dc.access(L2Request::data(LineAddr::new(1), WordIndex::new(0), false));
        assert_eq!(dc.stats().accesses, 1);
    }

    #[test]
    fn report_counts_regressions() {
        let rows = vec![
            LineSizeRow {
                benchmark: "a".into(),
                base_64b: 1.0,
                delta_32b: -10.0,
                delta_128b: 5.0,
                delta_ldis: 20.0,
                delta_ldis_128b: 25.0,
            },
            LineSizeRow {
                benchmark: "b".into(),
                base_64b: 1.0,
                delta_32b: 10.0,
                delta_128b: 5.0,
                delta_ldis: 20.0,
                delta_ldis_128b: 25.0,
            },
        ];
        let s = report(&rows);
        assert!(s.contains("1/2 benchmarks"));
    }
}
