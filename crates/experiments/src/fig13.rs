//! Figure 13: spatial footprint prediction (SFP) vs. line distillation.

use crate::report::{fmt_f, fmt_pct, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::stats::percent_reduction;
use ldis_sfp::{SfpCache, SfpConfig};
use ldis_workloads::memory_intensive;

/// MPKI reductions over the baseline for SFP (two predictor sizes) and
/// LDIS.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline MPKI.
    pub base: f64,
    /// SFP with a 16 k-entry (64 kB) predictor: reduction (%).
    pub sfp_16k: f64,
    /// SFP with a 64 k-entry (256 kB) predictor: reduction (%).
    pub sfp_64k: f64,
    /// LDIS-MT-RC: reduction (%).
    pub ldis: f64,
}

/// Runs the Figure 13 matrix.
pub fn data(cfg: &RunConfig) -> Vec<Fig13Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let s16 = run(b, cfg, || SfpCache::new(SfpConfig::sfp_16k()));
        let s64 = run(b, cfg, || SfpCache::new(SfpConfig::sfp_64k()));
        let ldis = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let red = |m: f64| percent_reduction(base.mpki, m);
        Fig13Row {
            benchmark: b.name.to_owned(),
            base: base.mpki,
            sfp_16k: red(s16.mpki),
            sfp_64k: red(s64.mpki),
            ldis: red(ldis.mpki),
        }
    })
}

/// Mean-MPKI reductions for the three configurations.
pub fn mean_reductions(rows: &[Fig13Row]) -> (f64, f64, f64) {
    let n = rows.len() as f64;
    let base: f64 = rows.iter().map(|r| r.base).sum::<f64>() / n;
    let mean_of = |f: fn(&Fig13Row) -> f64| {
        let reduced: f64 = rows
            .iter()
            .map(|r| r.base * (1.0 - f(r) / 100.0))
            .sum::<f64>()
            / n;
        percent_reduction(base, reduced)
    };
    (
        mean_of(|r| r.sfp_16k),
        mean_of(|r| r.sfp_64k),
        mean_of(|r| r.ldis),
    )
}

/// Renders the Figure 13 report.
pub fn report(rows: &[Fig13Row]) -> String {
    let mut t = Table::new(
        "Figure 13: % MPKI reduction — SFP (install-time prediction) vs LDIS (eviction-time filtering)",
        &["bench", "base-mpki", "SFP-16k", "SFP-64k", "LDIS"],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base, 2),
            fmt_pct(r.sfp_16k),
            fmt_pct(r.sfp_64k),
            fmt_pct(r.ldis),
        ]);
    }
    let (s16, s64, ldis) = mean_reductions(rows);
    t.row(vec![
        "avg".into(),
        String::new(),
        fmt_pct(s16),
        fmt_pct(s64),
        fmt_pct(ldis),
    ]);
    t.note("paper: SFP reduces misses but significantly less than LDIS; mispredictions turn would-be hits into misses");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn ldis_beats_sfp_on_average() {
        let benches: Vec<_> = memory_intensive()
            .into_iter()
            .filter(|b| matches!(b.name, "health" | "twolf" | "ammp"))
            .collect();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let rows = for_each_benchmark(&benches, |b| {
            let base = run_baseline(b, &cfg, 1 << 20);
            let sfp = run(b, &cfg, || SfpCache::new(SfpConfig::sfp_16k()));
            let ldis = run(b, &cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default())
            });
            let red = |m: f64| percent_reduction(base.mpki, m);
            Fig13Row {
                benchmark: b.name.to_owned(),
                base: base.mpki,
                sfp_16k: red(sfp.mpki),
                sfp_64k: f64::NAN,
                ldis: red(ldis.mpki),
            }
        });
        let avg_sfp: f64 = rows.iter().map(|r| r.sfp_16k).sum::<f64>() / rows.len() as f64;
        let avg_ldis: f64 = rows.iter().map(|r| r.ldis).sum::<f64>() / rows.len() as f64;
        assert!(
            avg_ldis > avg_sfp,
            "LDIS {avg_ldis}% must beat SFP {avg_sfp}% on sparse workloads"
        );
    }

    #[test]
    fn sfp_still_reduces_misses_somewhere() {
        let b = spec2000::by_name("health").unwrap();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let sfp = run(&b, &cfg, || SfpCache::new(SfpConfig::sfp_64k()));
        assert!(
            sfp.mpki < base.mpki,
            "SFP should still beat the baseline on health: {} vs {}",
            sfp.mpki,
            base.mpki
        );
    }

    #[test]
    fn report_renders() {
        let rows = vec![Fig13Row {
            benchmark: "x".into(),
            base: 5.0,
            sfp_16k: 10.0,
            sfp_64k: 12.0,
            ldis: 30.0,
        }];
        assert!(report(&rows).contains("SFP-64k"));
    }
}
