//! Deterministic parallel sweep engine.
//!
//! Every paper figure walks a benchmark × cache-configuration matrix whose
//! cells are mutually independent: each cell constructs its own workload
//! and caches, and draws its randomness from a seed derived with
//! [`SimRng::derive`](ldis_mem::SimRng::derive) rather than from any
//! shared stream. That independence is what makes the sweep
//! embarrassingly parallel *and* reproducible — cells may execute in any
//! order on any number of threads, and the merged result is bit-identical
//! because results are always written back into canonical matrix order.
//!
//! The worker count resolves, in priority order:
//!
//! 1. an explicit [`set_thread_override`] (the binary's `--threads` flag);
//! 2. the `LDIS_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are plain scoped threads pulling cell indices from an atomic
//! counter (work stealing without a queue): long cells — mcf's pointer
//! chases take several times longer than eon's resident hot set — never
//! stall short ones behind a static partition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `--threads` override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide worker-count override
/// that takes precedence over `LDIS_THREADS` and the detected parallelism.
/// Used by the `ldis-experiments` binary's `--threads` flag.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The machine's available parallelism (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count sweeps will use: the [`set_thread_override`] value if
/// set, else `LDIS_THREADS` if set and parseable, else
/// [`available_threads`]. Always at least 1.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("LDIS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// Runs `job` over every item on the configured worker pool and returns
/// the results in item order. Equivalent to
/// `items.iter().map(job).collect()` up to wall-clock time: the output is
/// bit-identical for every thread count as long as each job is a pure
/// function of its item.
pub fn sweep<I, T, F>(items: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_with_threads(configured_threads(), items, job)
}

/// [`sweep`] with an explicit worker count (used by the serial-vs-parallel
/// equivalence tests and benchmarks).
///
/// # Panics
///
/// Propagates the first panic of any job after all workers have drained.
pub fn sweep_with_threads<I, T, F>(threads: usize, items: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(job).collect();
    }
    // Each completed cell lands in its own slot, so the merge below is a
    // plain in-order unwrap no matter which worker finished it when.
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = job(item);
                // slots and items have the same length, so the slot exists.
                if let Some(slot) = slots.get(i) {
                    *slot.lock().expect("sweep slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every sweep cell completes")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4, 16, 200] {
            let out = sweep_with_threads(threads, &items, |&i| i * 3);
            let expect: Vec<usize> = items.iter().map(|&i| i * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep_with_threads(4, &empty, |&i| i).is_empty());
        assert_eq!(sweep_with_threads(4, &[9u32], |&i| i + 1), vec![10]);
    }

    #[test]
    fn uneven_cell_costs_do_not_reorder_results() {
        // Early cells sleep, late cells finish first; the merge must still
        // return canonical order.
        let items: Vec<u64> = (0..16).collect();
        let out = sweep_with_threads(8, &items, |&i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn configured_threads_is_positive_and_override_wins() {
        assert!(configured_threads() >= 1);
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        sweep_with_threads(4, &items, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
