//! Deterministic parallel sweep engine.
//!
//! Every paper figure walks a benchmark × cache-configuration matrix whose
//! cells are mutually independent: each cell constructs its own workload
//! and caches, and draws its randomness from a seed derived with
//! [`SimRng::derive`](ldis_mem::SimRng::derive) rather than from any
//! shared stream. That independence is what makes the sweep
//! embarrassingly parallel *and* reproducible — cells may execute in any
//! order on any number of threads, and the merged result is bit-identical
//! because results are always written back into canonical matrix order.
//!
//! The worker count resolves, in priority order:
//!
//! 1. an explicit [`set_thread_override`] (the binary's `--threads` flag);
//! 2. the `LDIS_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Workers are plain scoped threads pulling cell indices from an atomic
//! counter (work stealing without a queue): long cells — mcf's pointer
//! chases take several times longer than eon's resident hot set — never
//! stall short ones behind a static partition.
//!
//! **Panic isolation.** Every cell runs under `catch_unwind`, so one
//! panicking cell can never poison the merge or take sibling cells down
//! with it. [`try_sweep_with_threads`] surfaces each cell's outcome as a
//! typed `Result<T, CellPanic>`; the infallible [`sweep`] /
//! [`sweep_with_threads`] wrappers keep the historical contract of
//! re-raising the first (lowest-index) failure — deterministically, after
//! every other cell has completed. The crash-safe executor
//! ([`crate::exec`]) builds retry, watchdog and checkpoint semantics on
//! top of the same isolation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `--threads` override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or clears, with `None`) a process-wide worker-count override
/// that takes precedence over `LDIS_THREADS` and the detected parallelism.
/// Used by the `ldis-experiments` binary's `--threads` flag.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The machine's available parallelism (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count sweeps will use: the [`set_thread_override`] value if
/// set, else `LDIS_THREADS` if set and parseable, else
/// [`available_threads`]. Always at least 1.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("LDIS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// A sweep cell's panic, caught at the cell boundary and converted into a
/// value instead of unwinding through the worker pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellPanic {
    /// The panic payload, when it carried a `&str` or `String` message
    /// (the overwhelmingly common case); a placeholder otherwise.
    pub message: String,
}

impl CellPanic {
    /// The failure recorded when a cell's slot was never filled — a
    /// harness defect (a worker died outside the catch), never a
    /// simulation one.
    fn lost() -> Self {
        CellPanic {
            message: "cell result missing: worker terminated outside panic isolation".to_owned(),
        }
    }
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep cell panicked: {}", self.message)
    }
}

impl std::error::Error for CellPanic {}

/// Renders a caught panic payload as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs one cell under `catch_unwind`, converting a panic into a typed
/// [`CellPanic`].
///
/// `AssertUnwindSafe` is sound here because each job is required to be a
/// pure function of its item: on panic the partially-built result is
/// dropped wholesale and nothing the closure touched outlives the catch.
pub(crate) fn run_isolated<I, T, F>(job: &F, item: &I) -> Result<T, CellPanic>
where
    F: Fn(&I) -> T,
{
    catch_unwind(AssertUnwindSafe(|| job(item))).map_err(|payload| CellPanic {
        message: panic_message(payload.as_ref()),
    })
}

/// Runs `job` over every item on the configured worker pool and returns
/// the results in item order. Equivalent to
/// `items.iter().map(job).collect()` up to wall-clock time: the output is
/// bit-identical for every thread count as long as each job is a pure
/// function of its item.
pub fn sweep<I, T, F>(items: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    sweep_with_threads(configured_threads(), items, job)
}

/// [`sweep`] with an explicit worker count (used by the serial-vs-parallel
/// equivalence tests and benchmarks).
///
/// # Panics
///
/// Re-raises the first failing cell's panic payload (first in canonical
/// item order, so the choice is deterministic at every thread count) after
/// all workers have drained. Use [`try_sweep_with_threads`] to receive
/// per-cell failures as values instead.
pub fn sweep_with_threads<I, T, F>(threads: usize, items: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for result in try_sweep_with_threads(threads, items, job) {
        match result {
            Ok(v) => out.push(v),
            Err(failure) => std::panic::resume_unwind(Box::new(failure.message)),
        }
    }
    out
}

/// [`sweep_with_threads`] with per-cell panic isolation: each cell's
/// outcome is returned as `Ok(result)` or `Err(CellPanic)` in canonical
/// item order. A panicking cell affects nothing but its own slot — sibling
/// cells run to completion and the merge never sees a poisoned lock.
pub fn try_sweep_with_threads<I, T, F>(
    threads: usize,
    items: &[I],
    job: F,
) -> Vec<Result<T, CellPanic>>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(|item| run_isolated(&job, item)).collect();
    }
    // Each completed cell lands in its own slot, so the merge below is a
    // plain in-order read no matter which worker finished it when.
    let slots: Vec<Mutex<Option<Result<T, CellPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = run_isolated(&job, item);
                // slots and items have the same length, so the slot exists.
                // Poisoning is unreachable (job panics are caught before
                // the lock is taken), but recovery stays typed: the stored
                // Option is valid regardless of a historical poison flag.
                if let Some(slot) = slots.get(i) {
                    let mut guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    *guard = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| Err(CellPanic::lost()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4, 16, 200] {
            let out = sweep_with_threads(threads, &items, |&i| i * 3);
            let expect: Vec<usize> = items.iter().map(|&i| i * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn sweep_handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep_with_threads(4, &empty, |&i| i).is_empty());
        assert_eq!(sweep_with_threads(4, &[9u32], |&i| i + 1), vec![10]);
    }

    #[test]
    fn uneven_cell_costs_do_not_reorder_results() {
        // Early cells sleep, late cells finish first; the merge must still
        // return canonical order.
        let items: Vec<u64> = (0..16).collect();
        let out = sweep_with_threads(8, &items, |&i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, items);
    }

    #[test]
    fn configured_threads_is_positive_and_override_wins() {
        assert!(configured_threads() >= 1);
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panics_propagate_with_their_payload() {
        let items: Vec<u32> = (0..8).collect();
        sweep_with_threads(4, &items, |&i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn isolated_sweep_quarantines_only_the_panicking_cells() {
        let items: Vec<u32> = (0..32).collect();
        for threads in [1, 4] {
            let out = try_sweep_with_threads(threads, &items, |&i| {
                assert!(i % 7 != 3, "cell {i} told to fail");
                i * 2
            });
            for (i, result) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let failure = result.as_ref().expect_err("cell must have failed");
                    assert!(failure.message.contains("told to fail"), "{failure}");
                } else {
                    assert_eq!(*result, Ok(i as u32 * 2), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn first_failure_wins_deterministically() {
        // Multiple failing cells: the propagated payload is always the
        // lowest-index one, at any thread count.
        let items: Vec<u32> = (0..16).collect();
        for threads in [1, 2, 8] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                sweep_with_threads(threads, &items, |&i| {
                    if i == 11 || i == 4 {
                        panic!("cell {i} failed");
                    }
                    i
                });
            }))
            .expect_err("sweep must re-raise");
            assert_eq!(panic_message(caught.as_ref()), "cell 4 failed");
        }
    }

    #[test]
    fn cell_panic_formats_and_reports_lost_results() {
        let lost = CellPanic::lost();
        assert!(lost.to_string().contains("missing"));
        let e: Box<dyn std::error::Error> = Box::new(CellPanic {
            message: "boom".into(),
        });
        assert!(e.to_string().contains("boom"));
    }
}
