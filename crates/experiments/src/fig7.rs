//! Figure 7: breakdown of cache accesses into hit/miss classes for the
//! baseline cache and the distill cache.

use crate::report::{fmt_f, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_workloads::memory_intensive;

/// Access-outcome fractions for one benchmark under both organizations.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline hit fraction of L2 accesses.
    pub base_hit: f64,
    /// Distill-cache LOC-hit fraction.
    pub loc_hit: f64,
    /// Distill-cache WOC-hit fraction.
    pub woc_hit: f64,
    /// Distill-cache hole-miss fraction.
    pub hole_miss: f64,
    /// Distill-cache line-miss fraction.
    pub line_miss: f64,
    /// Extra L2 accesses of the distill cache relative to the baseline
    /// (the Section 7.2 footnote: sector misses add accesses).
    pub extra_access_pct: f64,
}

/// Runs the Figure 7 comparison (baseline vs. LDIS-MT-RC).
pub fn data(cfg: &RunConfig) -> Vec<Fig7Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let dist = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let da = dist.l2.accesses as f64;
        Fig7Row {
            benchmark: b.name.to_owned(),
            base_hit: base.l2.hit_rate(),
            loc_hit: dist.l2.loc_hits as f64 / da,
            woc_hit: dist.l2.woc_hits as f64 / da,
            hole_miss: dist.l2.hole_misses as f64 / da,
            line_miss: dist.l2.line_misses as f64 / da,
            extra_access_pct: (da / base.l2.accesses as f64 - 1.0) * 100.0,
        }
    })
}

/// Renders the Figure 7 report.
pub fn report(rows: &[Fig7Row]) -> String {
    let mut t = Table::new(
        "Figure 7: breakdown of L2 accesses (fractions); (a) baseline (b) distill cache",
        &[
            "bench",
            "base-hit",
            "LOC-hit",
            "WOC-hit",
            "hole-miss",
            "line-miss",
            "extra-acc%",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base_hit, 3),
            fmt_f(r.loc_hit, 3),
            fmt_f(r.woc_hit, 3),
            fmt_f(r.hole_miss, 3),
            fmt_f(r.line_miss, 3),
            fmt_f(r.extra_access_pct, 2),
        ]);
    }
    t.note("paper: mcf triples its hits via the WOC; art gains hits but ~half its misses become hole misses");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    fn row_for(name: &str, accesses: u64) -> Fig7Row {
        let b = spec2000::by_name(name).unwrap();
        let cfg = RunConfig::quick().with_accesses(accesses);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let dist = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let da = dist.l2.accesses as f64;
        Fig7Row {
            benchmark: name.to_owned(),
            base_hit: base.l2.hit_rate(),
            loc_hit: dist.l2.loc_hits as f64 / da,
            woc_hit: dist.l2.woc_hits as f64 / da,
            hole_miss: dist.l2.hole_misses as f64 / da,
            line_miss: dist.l2.line_misses as f64 / da,
            extra_access_pct: (da / base.l2.accesses as f64 - 1.0) * 100.0,
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = row_for("twolf", 200_000);
        let sum = r.loc_hit + r.woc_hit + r.hole_miss + r.line_miss;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn pointer_chase_gains_come_from_the_woc() {
        let r = row_for("health", 400_000);
        assert!(
            r.woc_hit > 0.1,
            "health should get substantial WOC hits, got {}",
            r.woc_hit
        );
        assert!(
            r.loc_hit + r.woc_hit > r.base_hit,
            "distill hits {} + {} should beat baseline {}",
            r.loc_hit,
            r.woc_hit,
            r.base_hit
        );
    }

    #[test]
    fn art_suffers_hole_misses() {
        let r = row_for("art", 400_000);
        assert!(
            r.hole_miss > 0.05,
            "art's rotating words must produce hole misses, got {}",
            r.hole_miss
        );
    }

    #[test]
    fn report_renders() {
        let r = row_for("apsi", 100_000);
        assert!(report(&[r]).contains("WOC-hit"));
    }
}
