//! Miss-ratio curves: exact traditional-LRU MPKI at every cache size
//! from one Mattson stack-distance pass per benchmark (`crates/mrc`).
//!
//! This is the engine behind the capacity studies — the rewired Figure 8
//! and Tables 5/6 call [`run_capacity_sweep`](crate::run_capacity_sweep)
//! with their own size lists — and an experiment in its own right: the
//! `mrc` subcommand renders the full miss-ratio curve of all 16 + 11
//! benchmarks over half a megabyte to four megabytes.

use crate::report::{fmt_f, Json, Table};
use crate::{for_each_benchmark, run_capacity_sweep, CapacitySweep, RunConfig};
use ldis_workloads::{cache_insensitive, memory_intensive, Benchmark};

/// The swept traditional cache sizes: 0.5, 0.75, 1, 1.5, 2 and 4 MB.
pub const MRC_SIZES: [u64; 6] = [512 << 10, 768 << 10, 1 << 20, 3 << 19, 2 << 20, 4 << 20];

/// Human-readable column labels of [`MRC_SIZES`], index-aligned. One
/// shared definition — the report, its tests, and both differential
/// oracles (`tests/mrc_oracle.rs`, `tests/mrc_sampled_oracle.rs`) all
/// read it, so the exact and sampled size lists cannot drift apart.
pub const MRC_SIZE_LABELS: [&str; MRC_SIZES.len()] =
    ["0.5MB", "0.75MB", "1MB", "1.5MB", "2MB", "4MB"];

/// All 16 memory-intensive plus 11 cache-insensitive benchmarks, the
/// population of the differential-oracle suite.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut benches = memory_intensive();
    benches.extend(cache_insensitive());
    benches
}

/// Runs the miss-ratio-curve sweep: one Mattson pass per benchmark
/// answering every size in [`MRC_SIZES`].
pub fn data(cfg: &RunConfig) -> Vec<CapacitySweep> {
    let benches = all_benchmarks();
    for_each_benchmark(&benches, |b| run_capacity_sweep(b, cfg, &MRC_SIZES))
}

/// Renders the miss-ratio-curve table (MPKI per size).
pub fn report(sweeps: &[CapacitySweep]) -> String {
    let mut columns: Vec<&str> = vec!["bench"];
    columns.extend(MRC_SIZE_LABELS);
    columns.push("sims");
    let mut t = Table::new(
        "MRC: traditional-LRU MPKI vs. capacity, one stack-distance pass per benchmark",
        &columns,
    );
    for s in sweeps {
        let mut cells = vec![s.benchmark.clone()];
        for &size in &MRC_SIZES {
            cells.push(fmt_f(s.mpki_at(size), 2));
        }
        cells.push("1".to_owned());
        t.row(cells);
    }
    t.note(format!(
        "each row: {} cache sizes from 1 simulation (direct sweeps need {})",
        MRC_SIZES.len(),
        MRC_SIZES.len()
    ));
    t.render()
}

/// The golden snapshot: per-benchmark miss-ratio curves with the full
/// reconstructed counters at every size. Byte-stable for a given seed;
/// compared against `tests/golden/mrc.json`.
pub fn snapshot(cfg: &RunConfig) -> Json {
    let sweeps = data(cfg);
    let rows = sweeps
        .iter()
        .map(|s| {
            let points = s.points.iter().map(|p| {
                Json::obj([
                    ("size_kb", Json::uint(p.size_bytes >> 10)),
                    ("sets", Json::uint(p.config.num_sets())),
                    ("ways", Json::uint(u64::from(p.config.ways()))),
                    ("mpki", Json::num(p.mpki)),
                    ("accesses", Json::uint(p.result.accesses)),
                    ("hits", Json::uint(p.result.hits)),
                    ("line_misses", Json::uint(p.result.line_misses)),
                    ("compulsory_misses", Json::uint(p.result.compulsory_misses)),
                    ("evictions", Json::uint(p.result.evictions)),
                    ("writebacks", Json::uint(p.result.writebacks)),
                    (
                        "avg_words_used",
                        Json::num(p.result.words_used_with_resident.mean()),
                    ),
                ])
            });
            Json::obj([
                ("benchmark", Json::str(&s.benchmark)),
                ("instructions", Json::uint(s.hierarchy.instructions)),
                ("points", Json::arr(points)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("experiment", Json::str("mrc")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        (
            "sizes_kb",
            Json::arr(MRC_SIZES.iter().map(|&s| Json::uint(s >> 10))),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn curves_are_non_increasing_in_capacity() {
        let b = spec2000::by_name("twolf").unwrap();
        let sweep = run_capacity_sweep(&b, &RunConfig::quick(), &MRC_SIZES);
        for pair in sweep.points.windows(2) {
            assert!(
                pair[0].result.line_misses >= pair[1].result.line_misses,
                "misses increased from {} to {} bytes",
                pair[0].size_bytes,
                pair[1].size_bytes
            );
        }
    }

    #[test]
    fn report_renders_every_size_column() {
        let b = spec2000::by_name("mcf").unwrap();
        let sweeps = vec![run_capacity_sweep(&b, &RunConfig::quick(), &MRC_SIZES)];
        let text = report(&sweeps);
        for col in MRC_SIZE_LABELS {
            assert!(text.contains(col), "missing column {col}");
        }
        assert!(text.contains("mcf"));
    }

    #[test]
    fn size_labels_match_the_sizes() {
        for (&size, label) in MRC_SIZES.iter().zip(MRC_SIZE_LABELS) {
            let mb = size as f64 / (1 << 20) as f64;
            assert_eq!(label, format!("{mb}MB"), "label drifted for {size} B");
        }
    }

    #[test]
    fn snapshot_names_every_benchmark_once() {
        // Structural check on a tiny run: the full quick snapshot is
        // exercised by the golden test at the workspace root.
        let cfg = RunConfig::quick().with_accesses(5_000);
        let snap = snapshot(&cfg).render_pretty();
        for b in all_benchmarks() {
            assert!(snap.contains(b.name), "missing {}", b.name);
        }
        assert!(snap.contains("\"experiment\": \"mrc\""));
    }
}
