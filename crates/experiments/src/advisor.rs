//! Online per-tenant cache advisor over rolling sampled MRCs.
//!
//! The reverter (Section 6 of the paper) answers one binary question with
//! set dueling: *should this cache distill at all?* The advisor
//! generalizes it along two axes using the constant-memory SHARDS
//! profiler (`ldis-mrc`):
//!
//! * **capacity** — a rolling windowed sampled MRC per tenant answers
//!   "what is the smallest candidate size holding tenant X's miss ratio
//!   under the target?";
//! * **LOC:WOC split** — the sampled mean words-used per data line
//!   generalizes the reverter's decision: tenants touching at most half
//!   a line distill (half the ways' capacity re-provisioned as a WOC),
//!   dense tenants keep a traditional layout.
//!
//! Unlike the sweep runners, the advisor ingests the **raw, L1-unfiltered
//! reference stream** — the fleet-profiler deployment model, where no L1
//! simulation runs in front of the profiler. Its miss ratios therefore
//! describe the raw stream and are *not* comparable to L2-side MPKI.
//!
//! Each tenant keeps one live [`ShardsProfiler`] plus the last completed
//! window; memory stays `O(tenants × S_max)` regardless of stream
//! length. Recommendations prefer the last *completed* window (a full
//! measurement) and fall back to the live window before the first
//! rotation.
//!
//! The `advisor` experiment drives a deterministic four-tenant
//! [`TenantMix`] through the advisor and snapshots the recommendations
//! (`tests/golden/advisor.json`).

use crate::report::{fmt_f, Json, Table};
use crate::{mrc, RunConfig};
use ldis_mem::{stable_id, Access, AccessKind, LineGeometry, SimRng};
use ldis_mrc::{SampledMrc, ShardsConfig, ShardsProfiler};
use ldis_workloads::TenantMix;
use std::collections::BTreeMap;

/// Knobs of an [`Advisor`].
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    /// References per tenant between window rotations.
    pub window_accesses: u64,
    /// SHARDS configuration of every per-tenant profiler.
    pub shards: ShardsConfig,
    /// Candidate cache sizes (bytes) a tenant can be assigned. Must be
    /// bucket-aligned for the shards histogram (multiples of
    /// `bucket_lines × line_bytes`).
    pub candidate_sizes: Vec<u64>,
    /// A tenant gets the smallest candidate size whose estimated miss
    /// ratio is at or below this target (the largest candidate if none
    /// qualifies).
    pub target_miss_ratio: f64,
    /// Line/word geometry of the ingested addresses.
    pub geometry: LineGeometry,
}

impl AdvisorConfig {
    /// The default advisor: 10% sampling, rotation every
    /// `window_accesses` references, the MRC experiment's six candidate
    /// sizes and a 15% miss-ratio target.
    pub fn with_window(window_accesses: u64) -> Self {
        AdvisorConfig {
            window_accesses: window_accesses.max(1),
            shards: ShardsConfig::at_rate(0.1),
            candidate_sizes: mrc::MRC_SIZES.to_vec(),
            target_miss_ratio: 0.15,
            geometry: LineGeometry::default(),
        }
    }
}

/// A finished profiling window.
#[derive(Clone, Debug)]
struct FinishedWindow {
    mrc: SampledMrc,
    mean_words_used: f64,
    sample_len: usize,
    final_rate: f64,
    refs: u64,
}

/// Per-tenant advisor state: the live profiler plus the last completed
/// window.
#[derive(Debug)]
struct TenantState {
    profiler: ShardsProfiler,
    window_refs: u64,
    total_refs: u64,
    windows_completed: u64,
    last: Option<FinishedWindow>,
}

impl TenantState {
    fn new(shards: ShardsConfig) -> Self {
        TenantState {
            profiler: ShardsProfiler::new(shards),
            window_refs: 0,
            total_refs: 0,
            windows_completed: 0,
            last: None,
        }
    }

    fn window(&self) -> FinishedWindow {
        match &self.last {
            Some(w) => w.clone(),
            None => FinishedWindow {
                mrc: self.profiler.mrc(),
                mean_words_used: self.profiler.mean_words_used(),
                sample_len: self.profiler.sample_len(),
                final_rate: self.profiler.current_rate(),
                refs: self.window_refs,
            },
        }
    }
}

/// What the advisor tells the resource manager about one tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct Recommendation {
    /// Tenant name.
    pub tenant: String,
    /// Completed windows so far (0 = based on the live partial window).
    pub windows_completed: u64,
    /// References in the window the recommendation is based on.
    pub window_refs: u64,
    /// Recommended capacity in bytes.
    pub size_bytes: u64,
    /// Estimated miss ratio at the recommended capacity.
    pub miss_ratio: f64,
    /// Estimated miss ratio at every candidate size, in candidate order.
    pub miss_ratios: Vec<(u64, f64)>,
    /// Sampled mean words used per data line.
    pub mean_words_used: f64,
    /// Whether the tenant should distill (LOC:WOC split) or stay
    /// traditional.
    pub distill: bool,
    /// Line-organized ways of the recommended 8-way-budget split.
    pub loc_ways: u32,
    /// Ways' worth of capacity re-provisioned as word-organized storage.
    pub woc_ways: u32,
    /// The profiler's realized sampling rate for the window.
    pub final_rate: f64,
    /// Tracked lines when the window closed.
    pub sample_len: usize,
}

/// The rolling multi-tenant advisor. See the module docs.
#[derive(Debug)]
pub struct Advisor {
    config: AdvisorConfig,
    tenants: BTreeMap<String, TenantState>,
}

impl Advisor {
    /// Creates an advisor with no tenants; tenants appear on first
    /// ingest.
    pub fn new(config: AdvisorConfig) -> Self {
        Advisor {
            config,
            tenants: BTreeMap::new(),
        }
    }

    /// The advisor's configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// Feeds one raw reference of `tenant` into its rolling profiler,
    /// rotating the tenant's window when it fills.
    pub fn ingest(&mut self, tenant: &str, access: &Access) {
        let geometry = self.config.geometry;
        let shards = self.config.shards;
        let window = self.config.window_accesses;
        let state = self
            .tenants
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantState::new(shards));
        let is_instr = matches!(access.kind, AccessKind::InstrFetch);
        let word = if is_instr {
            None
        } else {
            Some(geometry.word_index(access.addr))
        };
        state
            .profiler
            .record(geometry.line_addr(access.addr), word, is_instr);
        state.window_refs += 1;
        state.total_refs += 1;
        if state.window_refs >= window {
            state.last = Some(FinishedWindow {
                mrc: state.profiler.mrc(),
                mean_words_used: state.profiler.mean_words_used(),
                sample_len: state.profiler.sample_len(),
                final_rate: state.profiler.current_rate(),
                refs: state.window_refs,
            });
            state.profiler = ShardsProfiler::new(shards);
            state.window_refs = 0;
            state.windows_completed += 1;
        }
    }

    /// Total references ingested for `tenant` (0 if unseen).
    pub fn refs_of(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |s| s.total_refs)
    }

    /// Answers "what size / LOC:WOC split for tenant X": the smallest
    /// candidate size whose estimated miss ratio meets the target (else
    /// the largest candidate), plus the distill decision from the
    /// sampled words-used mean. `None` for an unseen tenant.
    pub fn recommendation(&self, tenant: &str) -> Option<Recommendation> {
        let state = self.tenants.get(tenant)?;
        let window = state.window();
        let line_bytes = self.config.geometry.line_bytes() as u64;
        let miss_ratios: Vec<(u64, f64)> = self
            .config
            .candidate_sizes
            .iter()
            .map(|&size| (size, window.mrc.miss_ratio(size / line_bytes)))
            .collect();
        let chosen = miss_ratios
            .iter()
            .find(|(_, m)| *m <= self.config.target_miss_ratio)
            .or_else(|| miss_ratios.last())
            .copied()?;
        // The reverter's rule, generalized: lines using at most half
        // their words distill; the paper's distill cache re-provisions
        // half an 8-way budget as word-organized storage.
        let words_per_line = f64::from(self.config.geometry.words_per_line());
        let distill = window.mean_words_used <= words_per_line / 2.0;
        let (loc_ways, woc_ways) = if distill { (4, 4) } else { (8, 0) };
        Some(Recommendation {
            tenant: tenant.to_owned(),
            windows_completed: state.windows_completed,
            window_refs: window.refs,
            size_bytes: chosen.0,
            miss_ratio: chosen.1,
            miss_ratios,
            mean_words_used: window.mean_words_used,
            distill,
            loc_ways,
            woc_ways,
            final_rate: window.final_rate,
            sample_len: window.sample_len,
        })
    }

    /// Recommendations for every known tenant, in name order.
    pub fn recommendations(&self) -> Vec<Recommendation> {
        self.tenants
            .keys()
            .filter_map(|t| self.recommendation(t))
            .collect()
    }
}

/// The advisor experiment's tenant mix: four tenants with distinct
/// footprints and densities — `art` (large sparse scans, weight 4),
/// `mcf` (pointer chasing, weight 2), `facerec` (dense words, weight 1)
/// and `twolf` (moderate set, weight 1) — interleaved deterministically
/// from the run seed.
pub fn experiment_mix(cfg: &RunConfig) -> TenantMix {
    let benches = mrc::all_benchmarks();
    let seed = SimRng::derive_seed(cfg.seed, stable_id("advisor"), stable_id("mix"));
    let mut builder = TenantMix::builder(seed);
    for (name, weight) in [("art", 4.0), ("mcf", 2.0), ("facerec", 1.0), ("twolf", 1.0)] {
        if let Some(b) = benches.iter().find(|b| b.name == name) {
            builder = builder.benchmark(weight, b);
        }
    }
    builder.build()
}

/// The outcome of the `advisor` experiment.
#[derive(Clone, Debug)]
pub struct AdvisorRun {
    /// The advisor configuration the run used.
    pub window_accesses: u64,
    /// Configured sampling rate.
    pub rate: f64,
    /// Miss-ratio target.
    pub target_miss_ratio: f64,
    /// Candidate sizes in bytes.
    pub candidate_sizes: Vec<u64>,
    /// Total references ingested across tenants.
    pub total_refs: u64,
    /// One recommendation per tenant, in name order.
    pub recommendations: Vec<Recommendation>,
}

/// Runs the advisor experiment: drives the four-tenant mix for
/// `cfg.accesses` tagged references through a rolling advisor (window =
/// a quarter of the budget, so heavy tenants complete windows and light
/// tenants exercise the live-window path), then collects every tenant's
/// recommendation.
pub fn data(cfg: &RunConfig) -> AdvisorRun {
    let mut mix = experiment_mix(cfg);
    let advisor_cfg = AdvisorConfig::with_window((cfg.accesses / 4).max(1));
    let mut advisor = Advisor::new(advisor_cfg);
    for _ in 0..cfg.accesses {
        let tagged = mix.next_tenant_access();
        let name = mix.tenant_name(tagged.tenant).unwrap_or("?").to_owned();
        advisor.ingest(&name, &tagged.access);
    }
    AdvisorRun {
        window_accesses: advisor.config().window_accesses,
        rate: advisor.config().shards.rate,
        target_miss_ratio: advisor.config().target_miss_ratio,
        candidate_sizes: advisor.config().candidate_sizes.clone(),
        total_refs: cfg.accesses,
        recommendations: advisor.recommendations(),
    }
}

/// Renders the advisor table.
pub fn report(run: &AdvisorRun) -> String {
    let mut t = Table::new(
        "Advisor: per-tenant capacity + LOC:WOC recommendations (sampled MRCs)",
        &[
            "tenant",
            "refs",
            "windows",
            "rate",
            "samples",
            "avg words",
            "mode",
            "loc:woc",
            "size",
            "miss",
        ],
    );
    for r in &run.recommendations {
        t.row(vec![
            r.tenant.clone(),
            r.window_refs.to_string(),
            r.windows_completed.to_string(),
            fmt_f(r.final_rate, 3),
            r.sample_len.to_string(),
            fmt_f(r.mean_words_used, 2),
            if r.distill { "distill" } else { "trad" }.to_owned(),
            format!("{}:{}", r.loc_ways, r.woc_ways),
            format!("{}KB", r.size_bytes >> 10),
            format!("{}%", fmt_f(r.miss_ratio * 100.0, 1)),
        ]);
    }
    t.note(format!(
        "window {} refs, target miss ratio {}%, raw (L1-unfiltered) stream",
        run.window_accesses,
        fmt_f(run.target_miss_ratio * 100.0, 0)
    ));
    t.render()
}

/// The golden snapshot: every tenant's recommendation with the full
/// candidate curve. Byte-stable for a given seed; compared against
/// `tests/golden/advisor.json`.
pub fn snapshot(cfg: &RunConfig) -> Json {
    let run = data(cfg);
    let rows = run
        .recommendations
        .iter()
        .map(|r| {
            let curve = r.miss_ratios.iter().map(|&(size, m)| {
                Json::obj([
                    ("size_kb", Json::uint(size >> 10)),
                    ("miss_ratio", Json::num(m)),
                ])
            });
            Json::obj([
                ("key", Json::str(&r.tenant)),
                ("refs", Json::uint(r.window_refs)),
                ("windows", Json::uint(r.windows_completed)),
                ("final_rate", Json::num(r.final_rate)),
                ("sample_len", Json::uint(r.sample_len as u64)),
                ("mean_words_used", Json::num(r.mean_words_used)),
                ("distill", Json::uint(u64::from(r.distill))),
                ("loc_ways", Json::uint(u64::from(r.loc_ways))),
                ("woc_ways", Json::uint(u64::from(r.woc_ways))),
                ("size_kb", Json::uint(r.size_bytes >> 10)),
                ("miss_ratio", Json::num(r.miss_ratio)),
                ("curve", Json::arr(curve)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("experiment", Json::str("advisor")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("window_accesses", Json::uint(run.window_accesses)),
        ("rate", Json::num(run.rate)),
        ("target_miss_ratio", Json::num(run.target_miss_ratio)),
        (
            "sizes_kb",
            Json::arr(run.candidate_sizes.iter().map(|&s| Json::uint(s >> 10))),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::Addr;

    #[test]
    fn unseen_tenant_has_no_recommendation() {
        let advisor = Advisor::new(AdvisorConfig::with_window(100));
        assert!(advisor.recommendation("ghost").is_none());
        assert_eq!(advisor.refs_of("ghost"), 0);
    }

    #[test]
    fn windows_rotate_and_recommendations_prefer_completed_windows() {
        let mut advisor = Advisor::new(AdvisorConfig::with_window(1_000));
        // A tiny hot loop: everything fits the smallest candidate.
        for i in 0..2_500u64 {
            let a = Access::load(Addr::new((i % 64) * 8), 8);
            advisor.ingest("hot", &a);
        }
        assert_eq!(advisor.refs_of("hot"), 2_500);
        let r = advisor.recommendation("hot").expect("seen tenant");
        assert_eq!(r.windows_completed, 2);
        assert_eq!(r.window_refs, 1_000, "based on a completed window");
        // 64 distinct 8 B words = 8 lines: the smallest size suffices.
        assert_eq!(r.size_bytes, *mrc::MRC_SIZES.first().expect("sizes"));
        assert!(r.miss_ratio <= 0.15, "{}", r.miss_ratio);
    }

    #[test]
    fn dense_lines_stay_traditional_sparse_lines_distill() {
        let mut advisor = Advisor::new(AdvisorConfig::with_window(10_000));
        for i in 0..4_000u64 {
            // Dense tenant: walks every word of each line.
            let dense = Access::load(Addr::new((i % 512) * 8), 8);
            advisor.ingest("dense", &dense);
            // Sparse tenant: only word 0 of each line.
            let sparse = Access::load(Addr::new((i % 64) * 64), 8);
            advisor.ingest("sparse", &sparse);
        }
        let dense = advisor.recommendation("dense").expect("dense");
        let sparse = advisor.recommendation("sparse").expect("sparse");
        assert!(!dense.distill, "avg words {}", dense.mean_words_used);
        assert_eq!((dense.loc_ways, dense.woc_ways), (8, 0));
        assert!(sparse.distill, "avg words {}", sparse.mean_words_used);
        assert_eq!((sparse.loc_ways, sparse.woc_ways), (4, 4));
    }

    #[test]
    fn experiment_is_deterministic_and_covers_every_tenant() {
        let cfg = RunConfig::quick().with_accesses(20_000);
        let a = snapshot(&cfg).render_pretty();
        let b = snapshot(&cfg).render_pretty();
        assert_eq!(a, b, "advisor snapshot must be byte-stable");
        for tenant in ["art", "mcf", "facerec", "twolf"] {
            assert!(a.contains(tenant), "missing {tenant}");
        }
        assert!(a.contains("\"experiment\": \"advisor\""));
    }

    #[test]
    fn report_renders_every_tenant_row() {
        let cfg = RunConfig::quick().with_accesses(10_000);
        let run = data(&cfg);
        assert_eq!(run.recommendations.len(), 4);
        let text = report(&run);
        for tenant in ["art", "mcf", "facerec", "twolf"] {
            assert!(text.contains(tenant), "missing {tenant}");
        }
        assert!(text.contains("raw (L1-unfiltered)"));
    }
}
