//! Appendix experiments: Table 5 (cache-insensitive benchmarks) and
//! Table 6 (average words used vs. cache size).

use crate::report::{fmt_f, Json, Table};
use crate::{
    for_each_benchmark, run, run_baseline, run_baseline_with_words, run_capacity_sweep, RunConfig,
};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_workloads::{cache_insensitive, memory_intensive};

/// The traditional sizes of Table 5: 1, 2 and 4 MB.
const TABLE5_SIZES: [u64; 3] = [1 << 20, 2 << 20, 4 << 20];

/// Table 5: MPKI of the insensitive benchmarks under four configurations.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Traditional 1 MB MPKI.
    pub trad_1mb: f64,
    /// LDIS (distill) 1 MB MPKI.
    pub ldis_1mb: f64,
    /// Traditional 2 MB MPKI.
    pub trad_2mb: f64,
    /// Traditional 4 MB MPKI.
    pub trad_4mb: f64,
    /// Paper's traditional 1 MB value for reference.
    pub paper_trad_1mb: f64,
}

/// Runs the Table 5 matrix over the 11 cache-insensitive benchmarks.
/// The three traditional sizes come from one Mattson capacity sweep per
/// benchmark; only the distill point simulates directly. Bit-identical
/// to [`table5_data_direct`] with two simulations per benchmark instead
/// of four.
pub fn table5_data(cfg: &RunConfig) -> Vec<Table5Row> {
    let benches = cache_insensitive();
    for_each_benchmark(&benches, |b| {
        let sweep = run_capacity_sweep(b, cfg, &TABLE5_SIZES);
        let l1 = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        Table5Row {
            benchmark: b.name.to_owned(),
            trad_1mb: sweep.mpki_at(1 << 20),
            ldis_1mb: l1.mpki,
            trad_2mb: sweep.mpki_at(2 << 20),
            trad_4mb: sweep.mpki_at(4 << 20),
            paper_trad_1mb: b.paper_mpki,
        }
    })
}

/// The pre-rewire Table 5 matrix: one direct baseline simulation per
/// traditional size. Kept as the reference side of the sweep-equivalence
/// tests and the CI byte-identity gate.
pub fn table5_data_direct(cfg: &RunConfig) -> Vec<Table5Row> {
    let benches = cache_insensitive();
    for_each_benchmark(&benches, |b| {
        let t1 = run_baseline(b, cfg, 1 << 20);
        let l1 = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let t2 = run_baseline(b, cfg, 2 << 20);
        let t4 = run_baseline(b, cfg, 4 << 20);
        Table5Row {
            benchmark: b.name.to_owned(),
            trad_1mb: t1.mpki,
            ldis_1mb: l1.mpki,
            trad_2mb: t2.mpki,
            trad_4mb: t4.mpki,
            paper_trad_1mb: b.paper_mpki,
        }
    })
}

/// Renders Table 5.
pub fn table5_report(rows: &[Table5Row]) -> String {
    let mut t = Table::new(
        "Table 5: MPKI for cache-insensitive benchmarks (Appendix A)",
        &[
            "bench",
            "Trad-1MB",
            "LDIS-1MB",
            "Trad-2MB",
            "Trad-4MB",
            "paper-1MB",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.trad_1mb, 2),
            fmt_f(r.ldis_1mb, 2),
            fmt_f(r.trad_2mb, 2),
            fmt_f(r.trad_4mb, 2),
            fmt_f(r.paper_trad_1mb, 2),
        ]);
    }
    t.note("paper: neither LDIS nor 4x capacity moves these benchmarks");
    t.render()
}

fn table5_snapshot_of(rows: &[Table5Row], cfg: &RunConfig) -> Json {
    let rows = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                ("trad_1mb_mpki", Json::num(r.trad_1mb)),
                ("ldis_1mb_mpki", Json::num(r.ldis_1mb)),
                ("trad_2mb_mpki", Json::num(r.trad_2mb)),
                ("trad_4mb_mpki", Json::num(r.trad_4mb)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("experiment", Json::str("table5")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("rows", Json::Arr(rows)),
    ])
}

/// The Table 5 golden snapshot (`tests/golden/table5.json`), computed
/// through the single-pass capacity sweep.
pub fn table5_snapshot(cfg: &RunConfig) -> Json {
    table5_snapshot_of(&table5_data(cfg), cfg)
}

/// [`table5_snapshot`] computed through the pre-rewire direct
/// simulations; must render byte-identically.
pub fn table5_snapshot_direct(cfg: &RunConfig) -> Json {
    table5_snapshot_of(&table5_data_direct(cfg), cfg)
}

/// Table 6: average words used per evicted line as cache size varies.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Average words used at 0.75 / 1.0 / 1.25 / 1.5 / 2.0 MB.
    pub avg_words: [f64; 5],
    /// Paper's 1 MB value for reference.
    pub paper_1mb: f64,
}

/// The cache sizes of Table 6 in bytes.
pub const TABLE6_SIZES: [u64; 5] = [768 << 10, 1 << 20, 1280 << 10, 1536 << 10, 2 << 20];

/// Runs the Table 6 sweep over the 16 memory-intensive benchmarks: all
/// five sizes' words-used histograms (evicted plus resident lines) from
/// one Mattson pass per benchmark. Bit-identical to
/// [`table6_data_direct`] with one simulation per benchmark instead of
/// five.
pub fn table6_data(cfg: &RunConfig) -> Vec<Table6Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let sweep = run_capacity_sweep(b, cfg, &TABLE6_SIZES);
        let mut avg_words = [0.0; 5];
        for (slot, &size) in avg_words.iter_mut().zip(&TABLE6_SIZES) {
            *slot = sweep
                .point(size)
                .map_or(f64::NAN, |p| p.result.words_used_with_resident.mean());
        }
        Table6Row {
            benchmark: b.name.to_owned(),
            avg_words,
            paper_1mb: b.paper_avg_words,
        }
    })
}

/// The pre-rewire Table 6 sweep: one direct simulation per size. Kept as
/// the reference side of the sweep-equivalence tests and the CI
/// byte-identity gate.
pub fn table6_data_direct(cfg: &RunConfig) -> Vec<Table6Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let mut avg_words = [0.0; 5];
        for (slot, &size) in avg_words.iter_mut().zip(&TABLE6_SIZES) {
            let (_, words) = run_baseline_with_words(b, cfg, size);
            *slot = words.mean();
        }
        Table6Row {
            benchmark: b.name.to_owned(),
            avg_words,
            paper_1mb: b.paper_avg_words,
        }
    })
}

fn table6_snapshot_of(rows: &[Table6Row], cfg: &RunConfig) -> Json {
    let rows = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("benchmark", Json::str(&r.benchmark)),
                (
                    "avg_words",
                    Json::arr(r.avg_words.iter().copied().map(Json::num)),
                ),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("experiment", Json::str("table6")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        (
            "sizes_kb",
            Json::arr(TABLE6_SIZES.iter().map(|&s| Json::uint(s >> 10))),
        ),
        ("rows", Json::Arr(rows)),
    ])
}

/// The Table 6 golden snapshot (`tests/golden/table6.json`), computed
/// through the single-pass capacity sweep.
pub fn table6_snapshot(cfg: &RunConfig) -> Json {
    table6_snapshot_of(&table6_data(cfg), cfg)
}

/// [`table6_snapshot`] computed through the pre-rewire direct
/// simulations; must render byte-identically.
pub fn table6_snapshot_direct(cfg: &RunConfig) -> Json {
    table6_snapshot_of(&table6_data_direct(cfg), cfg)
}

/// Renders Table 6.
pub fn table6_report(rows: &[Table6Row]) -> String {
    let mut t = Table::new(
        "Table 6: average words used per evicted line vs. cache size (Appendix B)",
        &[
            "bench",
            "0.75MB",
            "1MB",
            "1.25MB",
            "1.5MB",
            "2MB",
            "paper@1MB",
        ],
    );
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        for v in r.avg_words {
            cells.push(fmt_f(v, 2));
        }
        cells.push(fmt_f(r.paper_1mb, 2));
        t.row(cells);
    }
    t.note("paper: art's words-used grows sharply with capacity (1.81 -> 3.63); swim jumps once the second pass fits");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn insensitive_benchmarks_ignore_capacity_and_ldis() {
        let benches: Vec<_> = cache_insensitive()
            .into_iter()
            .filter(|b| matches!(b.name, "lucas" | "eon"))
            .collect();
        let cfg = RunConfig::quick().with_accesses(300_000);
        let rows = for_each_benchmark(&benches, |b| {
            let t1 = run_baseline(b, &cfg, 1 << 20);
            let l1 = run(b, &cfg, || {
                DistillCache::new(DistillConfig::hpca2007_default())
            });
            let t4 = run_baseline(b, &cfg, 4 << 20);
            (b.name, t1.mpki, l1.mpki, t4.mpki)
        });
        for (name, t1, l1, t4) in rows {
            let tol = (t1 * 0.1).max(0.05);
            assert!(
                (t1 - l1).abs() <= tol,
                "{name}: LDIS changed MPKI {t1} -> {l1}"
            );
            assert!(
                (t1 - t4).abs() <= tol,
                "{name}: 4x capacity changed MPKI {t1} -> {t4}"
            );
        }
    }

    #[test]
    fn art_words_used_grows_with_capacity() {
        let b = spec2000::by_name("art").unwrap();
        let cfg = RunConfig::quick().with_accesses(600_000);
        let avg_at = |size: u64| run_baseline_with_words(&b, &cfg, size).1.mean();
        let small = avg_at(1 << 20);
        let big = avg_at(2 << 20);
        assert!(
            big > small + 0.3,
            "art words-used should grow with capacity: {small} -> {big}"
        );
    }

    #[test]
    fn reports_render() {
        let t5 = vec![Table5Row {
            benchmark: "x".into(),
            trad_1mb: 1.0,
            ldis_1mb: 1.0,
            trad_2mb: 1.0,
            trad_4mb: 1.0,
            paper_trad_1mb: 1.0,
        }];
        assert!(table5_report(&t5).contains("Trad-4MB"));
        let t6 = vec![Table6Row {
            benchmark: "x".into(),
            avg_words: [1.0; 5],
            paper_1mb: 1.8,
        }];
        assert!(table6_report(&t6).contains("1.25MB"));
    }
}
