//! Table 3: storage overhead of line distillation, computed from the
//! structure geometry.

use crate::report::{fmt_f, Json, Table};
use ldis_cache::CacheConfig;
use ldis_distill::{DistillConfig, StorageOverhead};
use ldis_mem::LineGeometry;

/// The golden snapshot: every Table 3 storage-overhead figure plus the
/// line-size-scaled percentages. Purely geometric (no simulation), so any
/// drift means the overhead model itself changed. Compared against
/// `tests/golden/table3.json`.
pub fn snapshot() -> Json {
    let o = data();
    Json::obj([
        ("experiment", Json::str("table3")),
        ("woc_entry_bits", Json::uint(o.woc_entry_bits)),
        ("woc_entries", Json::uint(o.woc_entries)),
        ("woc_tag_bytes", Json::uint(o.woc_tag_bytes)),
        ("loc_entries", Json::uint(o.loc_entries)),
        ("loc_footprint_bytes", Json::uint(o.loc_footprint_bytes)),
        ("l1d_lines", Json::uint(o.l1d_lines)),
        ("l1d_footprint_bytes", Json::uint(o.l1d_footprint_bytes)),
        ("median_counter_bytes", Json::uint(o.median_counter_bytes)),
        ("atd_entries", Json::uint(o.atd_entries)),
        ("reverter_bytes", Json::uint(o.reverter_bytes)),
        ("total_bytes", Json::uint(o.total_bytes)),
        ("baseline_area_bytes", Json::uint(o.baseline_area_bytes)),
        ("percent_of_baseline", Json::num(o.percent_of_baseline())),
        ("percent_at_128b", Json::num(percent_for_line_size(128))),
        ("percent_at_256b", Json::num(percent_for_line_size(256))),
    ])
}

/// Computes the Table 3 breakdown for the paper's configuration.
pub fn data() -> StorageOverhead {
    let cfg = DistillConfig::hpca2007_default();
    let l1d = CacheConfig::new(16 << 10, 2, LineGeometry::default());
    StorageOverhead::compute(&cfg, &l1d)
}

/// The overhead percentage for a scaled line size (Section 7.5.1's 128 B /
/// 256 B observations; the word count per line stays at 8).
pub fn percent_for_line_size(line_bytes: u32) -> f64 {
    let geom = LineGeometry::new(line_bytes, line_bytes / 8);
    let cfg = DistillConfig::new(1 << 20, 8, 2, geom)
        .with_policy(ldis_distill::ThresholdPolicy::median())
        .with_reverter(ldis_distill::ReverterConfig::default());
    let l1d = CacheConfig::new(16 << 10, 2, geom);
    StorageOverhead::compute(&cfg, &l1d).percent_of_baseline()
}

/// Renders Table 3.
pub fn report() -> String {
    let o = data();
    let mut t = Table::new(
        "Table 3: storage overhead of line distillation (computed)",
        &["item", "value"],
    );
    let kib = |b: u64| format!("{:.2} kB", b as f64 / 1024.0);
    t.row(vec![
        "WOC tag-entry size".into(),
        format!("{} bits", o.woc_entry_bits),
    ]);
    t.row(vec!["WOC tag entries".into(), format!("{}", o.woc_entries)]);
    t.row(vec!["WOC tag overhead".into(), kib(o.woc_tag_bytes)]);
    t.row(vec!["LOC tag entries".into(), format!("{}", o.loc_entries)]);
    t.row(vec![
        "LOC footprint overhead".into(),
        kib(o.loc_footprint_bytes),
    ]);
    t.row(vec!["L1D lines".into(), format!("{}", o.l1d_lines)]);
    t.row(vec![
        "L1D footprint overhead".into(),
        format!("{} B", o.l1d_footprint_bytes),
    ]);
    t.row(vec![
        "median-threshold counters".into(),
        format!("{} B", o.median_counter_bytes),
    ]);
    t.row(vec!["ATD entries".into(), format!("{}", o.atd_entries)]);
    t.row(vec!["reverter overhead".into(), kib(o.reverter_bytes)]);
    t.row(vec!["total overhead".into(), kib(o.total_bytes)]);
    t.row(vec!["baseline L2 area".into(), kib(o.baseline_area_bytes)]);
    t.row(vec![
        "% increase in L2 area".into(),
        format!("{}%", fmt_f(o.percent_of_baseline(), 2)),
    ]);
    t.row(vec![
        "% at 128B lines".into(),
        format!("{}%", fmt_f(percent_for_line_size(128), 2)),
    ]);
    t.row(vec![
        "% at 256B lines".into(),
        format!("{}%", fmt_f(percent_for_line_size(256), 2)),
    ]);
    t.note("paper: 133 kB total, 12.2% of the 1088 kB baseline area; ~7% at 128B, ~4% at 256B");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_total() {
        let o = data();
        assert_eq!(o.total_bytes, 136_466); // 116kB+16kB+256B+18B+1kB
        assert!((o.percent_of_baseline() - 12.2).abs() < 0.1);
    }

    #[test]
    fn report_contains_every_row() {
        let s = report();
        for needle in ["29 bits", "32768", "116.00 kB", "12.2", "256B"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
