//! `ldis-trace`: record, inspect and replay memory-access traces.
//!
//! ```text
//! ldis-trace record <benchmark> <file> [--accesses N] [--seed N]
//! ldis-trace info   <file>
//! ldis-trace replay <file> [--l2 baseline|distill]
//! ```
//!
//! Traces use the LDT1 binary format (`ldis_mem::Trace::write_to`), so a
//! recorded stream can be replayed bit-identically on another machine or
//! against a different cache organization.

use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::{AccessKind, LineGeometry, Trace};
use ldis_workloads::spec2000;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn usage() -> ! {
    eprintln!(
        "usage:\n  ldis-trace record <benchmark> <file> [--accesses N] [--seed N]\n  \
         ldis-trace info <file>\n  ldis-trace replay <file> [--l2 baseline|distill]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    }
}

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(default)
}

fn record(args: &[String]) {
    let (bench_name, path) = match (args.first(), args.get(1)) {
        (Some(b), Some(p)) => (b.clone(), p.clone()),
        _ => usage(),
    };
    let accesses = parse_flag(args, "--accesses", 1_000_000) as usize;
    let seed = parse_flag(args, "--seed", 42);
    let bench = spec2000::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark: {bench_name}");
        usage()
    });
    let trace = (bench.make)(seed).record(accesses);
    let file = File::create(&path).expect("create trace file");
    trace
        .write_to(BufWriter::new(file))
        .expect("write trace file");
    println!(
        "recorded {} accesses ({} instructions) of {} to {path}",
        trace.len(),
        trace.instructions(),
        trace.name()
    );
}

fn load(path: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    Trace::read_from(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn info(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let trace = load(path);
    let geom = LineGeometry::default();
    let (mut loads, mut stores, mut fetches) = (0u64, 0u64, 0u64);
    let mut lines = std::collections::BTreeSet::new();
    for a in trace.accesses() {
        match a.kind {
            AccessKind::Load => loads += 1,
            AccessKind::Store => stores += 1,
            AccessKind::InstrFetch => fetches += 1,
        }
        lines.insert(geom.line_addr(a.addr));
    }
    println!("trace:         {}", trace.name());
    println!("accesses:      {}", trace.len());
    println!("instructions:  {}", trace.instructions());
    println!("loads:         {loads}");
    println!("stores:        {stores}");
    println!("ifetches:      {fetches}");
    println!(
        "distinct 64B lines: {} ({:.2} MB touched)",
        lines.len(),
        lines.len() as f64 * 64.0 / (1024.0 * 1024.0)
    );
}

fn replay(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let l2_kind = args
        .iter()
        .position(|a| a == "--l2")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("distill");
    let trace = load(path);
    match l2_kind {
        "baseline" => {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let mut hier = Hierarchy::hpca2007(l2);
            hier.run_trace(&trace);
            println!("baseline: {}", hier.l2().stats());
            println!("MPKI: {:.3}", hier.mpki());
        }
        "distill" => {
            let l2 = DistillCache::new(DistillConfig::hpca2007_default());
            let mut hier = Hierarchy::hpca2007(l2);
            hier.run_trace(&trace);
            println!("{}: {}", hier.l2().name(), hier.l2().stats());
            println!("MPKI: {:.3}", hier.mpki());
        }
        other => {
            eprintln!("unknown --l2 {other}");
            usage();
        }
    }
}
