//! `ldis-experiments`: regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! ldis-experiments [EXPERIMENT...] [--accesses N] [--warmup N] [--seed N]
//!                  [--threads N] [--quick]
//!
//! EXPERIMENT: all fig1 fig2 table2 fig6 fig7 fig8 fig9 table3 fig10
//!             fig11 fig13 table5 table6 mrc advisor ablations resilience
//! ```
//!
//! Sweeps run on a worker pool sized by `--threads`, the `LDIS_THREADS`
//! environment variable, or the machine's available parallelism (in that
//! priority order). Results are bit-identical for every thread count.
//!
//! Two operational commands run outside the `all` set:
//!
//! ```text
//! ldis-experiments sweep [--journal FILE] [--resume] [--cell N]
//!                        [--cell-timeout MS] [--max-retries N]
//!                        [--fault CELL:KIND[:ATTEMPTS],...]
//!                        [--out FILE] [--quarantine FILE] [--golden-check]
//! ldis-experiments bench [--out FILE] [--check FILE]
//! ldis-experiments bench-mrc [--out FILE]
//! ```
//!
//! `sweep` runs the full 27-benchmark × 3-configuration matrix on the
//! crash-safe executor: cells are panic-isolated, retried, watchdogged
//! and checkpointed; `--resume` replays a checksummed journal and
//! produces bytes identical to an uninterrupted run. `bench` times the
//! matrix (plus a single-thread generation/simulation phase split) and
//! writes the `BENCH_sweep.json` trajectory artifact; `--check FILE`
//! compares the fresh single-thread ns/access against the committed
//! artifact and exits nonzero on a >10% regression. `bench-mrc` times
//! the exact Mattson pass against the sampled SHARDS pass at rates
//! 0.1/0.01/0.001 and writes `BENCH_mrc.json`.

use ldis_experiments::exec::FaultPlan;
use ldis_experiments::{
    ablations, advisor, appendix, costs, fig10, fig11, fig13, fig6, fig7, fig8, fig9, linesize,
    motivation, mrc, parallel, perf, resilience, sweep, table3, RunConfig,
};

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table3",
    "fig10",
    "fig11",
    "fig13",
    "table5",
    "table6",
    "mrc",
    "advisor",
    "costs",
    "linesize",
    "ablations",
    "resilience",
];

fn usage() -> ! {
    eprintln!(
        "usage: ldis-experiments [EXPERIMENT...] [--accesses N] [--warmup N] [--seed N] \
         [--threads N] [--quick]\n\
         experiments: all {}\n\
         crash-safe sweep: sweep [--journal FILE] [--resume] [--cell N] [--cell-timeout MS]\n\
         \u{20}                  [--max-retries N] [--fault CELL:KIND[:ATTEMPTS],...]\n\
         \u{20}                  [--out FILE] [--quarantine FILE] [--golden-check]\n\
         throughput:       bench [--out FILE] [--check FILE]  (sweep matrix)\n\
         \u{20}                  bench-mrc [--out FILE]  (exact vs sampled MRC passes)\n\
         threads default to LDIS_THREADS or the available parallelism; results are\n\
         bit-identical for every thread count",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = RunConfig::paper();
    let mut wanted: Vec<String> = Vec::new();
    let mut journal: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut only_cell: Option<usize> = None;
    let mut cell_timeout_ms: Option<u64> = None;
    let mut max_retries: u32 = 2;
    let mut faults = FaultPlan::none();
    let mut out: Option<std::path::PathBuf> = None;
    let mut check: Option<std::path::PathBuf> = None;
    let mut quarantine: Option<std::path::PathBuf> = None;
    let mut golden_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--accesses" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.accesses = v.parse().unwrap_or_else(|_| usage());
            }
            "--warmup" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.warmup = v.parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                parallel::set_thread_override(Some(n));
            }
            "--quick" => cfg = RunConfig::quick(),
            "--journal" => journal = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--resume" => resume = true,
            "--cell" => {
                let v = args.next().unwrap_or_else(|| usage());
                only_cell = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--cell-timeout" => {
                let v = args.next().unwrap_or_else(|| usage());
                cell_timeout_ms = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--max-retries" => {
                let v = args.next().unwrap_or_else(|| usage());
                max_retries = v.parse().unwrap_or_else(|_| usage());
            }
            "--fault" => {
                let v = args.next().unwrap_or_else(|| usage());
                faults = FaultPlan::parse(&v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--check" => check = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--quarantine" => quarantine = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--golden-check" => golden_check = true,
            "--help" | "-h" => usage(),
            name if name.starts_with('-') => usage(),
            name => wanted.push(name.to_owned()),
        }
    }

    // `sweep` and `bench` are operational commands dispatched outside the
    // per-figure loop (and never part of `all`).
    if wanted.iter().any(|w| w == "sweep") {
        if wanted.len() > 1 {
            eprintln!("`sweep` runs alone (it has its own flags)");
            usage();
        }
        let mut opts = sweep::SweepOptions::new(cfg, parallel::configured_threads());
        opts.max_retries = max_retries;
        opts.cell_timeout_ms = cell_timeout_ms;
        opts.faults = faults;
        opts.journal = journal;
        opts.resume = resume;
        opts.out = out;
        opts.quarantine_out = quarantine;
        opts.only_cell = only_cell;
        opts.golden_check = golden_check;
        match sweep::execute(&opts) {
            Ok(outcome) => {
                println!("{}", outcome.text);
                if outcome.quarantined > 0 {
                    // Quarantine degrades the run; it does not fail it.
                    eprintln!(
                        "{} cell(s) quarantined; see the report above",
                        outcome.quarantined
                    );
                }
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if wanted.iter().any(|w| w == "bench") {
        if wanted.len() > 1 {
            eprintln!("`bench` runs alone");
            usage();
        }
        let points = perf::measure(&cfg, &[1, 4]);
        println!("{}", perf::report(&cfg, &points));
        let phases = points.first().map(|serial| {
            let ph = perf::measure_phases(&cfg, serial);
            println!("  {}", perf::phase_report(&ph));
            ph
        });
        if let Some(path) = out {
            let rendered = perf::snapshot(&cfg, &points, phases.as_ref()).render_pretty();
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        if let Some(path) = check {
            let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(1);
            });
            let fresh = points.first().unwrap_or_else(|| {
                eprintln!("no single-thread measurement");
                std::process::exit(1);
            });
            match perf::check_regression_retrying(&committed, fresh, 3, || {
                eprintln!("  slow window; re-measuring single-thread");
                perf::measure(&cfg, &[1]).into_iter().next()
            }) {
                Ok(verdict) => println!("{verdict}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if wanted.iter().any(|w| w == "bench-mrc") {
        if wanted.len() > 1 {
            eprintln!("`bench-mrc` runs alone");
            usage();
        }
        let points = perf::measure_mrc(&cfg, &[0.1, 0.01, 0.001]);
        println!("{}", perf::mrc_report(&cfg, &points));
        if let Some(path) = out {
            let rendered = perf::mrc_snapshot(&cfg, &points).render_pretty();
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        return;
    }

    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    for w in &wanted {
        if !ALL.contains(&w.as_str()) {
            eprintln!("unknown experiment: {w}");
            usage();
        }
    }

    println!(
        "Line Distillation (HPCA 2007) reproduction — {} accesses per run, seed {}, \
         {} worker thread(s)\n",
        cfg.accesses,
        cfg.seed,
        parallel::configured_threads()
    );

    // Figure 1 / Figure 2 / Table 2 share one baseline run per benchmark.
    let needs_motivation = wanted
        .iter()
        .any(|w| matches!(w.as_str(), "fig1" | "fig2" | "table2"));
    let profiles = if needs_motivation {
        Some(motivation::data(&cfg))
    } else {
        None
    };

    for w in &wanted {
        let out = match w.as_str() {
            "fig1" => motivation::fig1_report(profiles.as_ref().expect("computed above")),
            "fig2" => motivation::fig2_report(profiles.as_ref().expect("computed above")),
            "table2" => motivation::table2_report(profiles.as_ref().expect("computed above")),
            "fig6" => fig6::report(&fig6::data(&cfg)),
            "fig7" => fig7::report(&fig7::data(&cfg)),
            "fig8" => fig8::report(&fig8::data(&cfg)),
            "fig9" => fig9::report(&fig9::data(&cfg)),
            "table3" => table3::report(),
            "fig10" => fig10::report(&fig10::data(&cfg)),
            "fig11" => fig11::report(&fig11::data(&cfg)),
            "fig13" => fig13::report(&fig13::data(&cfg)),
            "costs" => costs::report(&costs::data(&cfg)),
            "linesize" => linesize::report(&linesize::data(&cfg)),
            "table5" => appendix::table5_report(&appendix::table5_data(&cfg)),
            "table6" => appendix::table6_report(&appendix::table6_data(&cfg)),
            "mrc" => mrc::report(&mrc::data(&cfg)),
            "advisor" => advisor::report(&advisor::data(&cfg)),
            "ablations" => ablations::all(&cfg),
            "resilience" => resilience::report(&resilience::data(&cfg)),
            _ => unreachable!("validated above"),
        };
        println!("{out}");
    }
}
