//! Experiment harness: regenerates every table and figure of
//! *"Line Distillation"* (HPCA 2007).
//!
//! Each module corresponds to one experiment and exposes a `data` function
//! (structured results) and a `report`/`*_report` function (a rendered
//! text table). The `ldis-experiments` binary drives them:
//!
//! ```text
//! ldis-experiments all                 # every table and figure
//! ldis-experiments fig6 --accesses 4000000
//! ldis-experiments fig9 table3 --quick
//! ```
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`motivation`] | Figure 1, Figure 2, Table 2 |
//! | [`fig6`] | Figure 6 (LDIS configurations) |
//! | [`fig7`] | Figure 7 (hit/miss breakdown) |
//! | [`fig8`] | Figure 8 (capacity analysis) |
//! | [`fig9`] | Figure 9 (IPC) |
//! | [`table3`] | Table 3 (storage overhead) |
//! | [`fig10`] | Figure 10 (compressibility) |
//! | [`fig11`] | Figure 11 (LDIS / CMPR / FAC) |
//! | [`fig13`] | Figure 13 (SFP comparison) |
//! | [`appendix`] | Table 5, Table 6 |
//! | [`mrc`] | miss-ratio curves (single-pass Mattson capacity sweep) |
//! | [`advisor`] | per-tenant capacity/LOC:WOC advisor (sampled SHARDS MRCs) |
//! | [`costs`] | Section 7.5 latency/energy costs |
//! | [`linesize`] | Section 2 footnote / §7.5.1 line-size sensitivity |
//! | [`ablations`] | design-choice ablations (DESIGN.md §7) |
//! | [`resilience`] | fault-injection campaign (DESIGN.md fault model) |
//! | [`sweep`] | full matrix on the crash-safe executor ([`exec`]) |
//! | [`perf`] | wall-clock throughput trajectory (`BENCH_sweep.json`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod advisor;
pub mod appendix;
pub mod costs;
pub mod exec;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod golden;
pub mod linesize;
pub mod motivation;
pub mod mrc;
pub mod parallel;
pub mod perf;
pub mod report;
pub mod resilience;
mod runner;
pub mod sweep;
pub mod table3;

pub use runner::{
    baseline_config, for_each_benchmark, run, run_baseline, run_baseline_with_words,
    run_capacity_sweep, run_matrix, run_matrix_with_threads, run_sampled_capacity_sweep,
    CapacityPoint, CapacitySweep, RunConfig, RunResult, SampledCapacityPoint, SampledCapacitySweep,
};
