//! Plain-text table rendering for experiment reports, plus the canonical
//! JSON value used by the golden-snapshot harness (`crate::golden`).

use std::fmt::Write as _;

/// A simple aligned text table: title, header row, data rows.
///
/// # Example
///
/// ```
/// use ldis_experiments::report::Table;
///
/// let mut t = Table::new("Demo", &["bench", "mpki"]);
/// t.row(vec!["art".into(), "38.3".into()]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("art"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note printed below the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row + data rows; notes omitted).
    /// Cells containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders the table with aligned columns (first column
    /// left-justified, the rest right-justified).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            // Cells beyond the header count render unaligned rather than
            // growing a phantom column.
            for (i, cell) in row.iter().enumerate() {
                if let Some(w) = widths.get_mut(i) {
                    *w = (*w).max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.len().max(total.min(100))));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let width = widths.get(i).copied().unwrap_or(0);
                if i == 0 {
                    let _ = write!(line, "{cell:<width$}");
                } else {
                    let _ = write!(line, "{cell:>width$}");
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// A canonical JSON value for golden snapshots.
///
/// The workspace is dependency-free, so this is a small hand-rolled
/// serializer with one hard requirement: **byte-stable rendering**.
/// Object keys keep insertion order, floats render with Rust's
/// shortest-roundtrip formatting (bit-identical for bit-identical values),
/// and non-finite floats canonicalize to `null`. Two snapshots render to
/// the same bytes if and only if their values are identical, which is what
/// lets `tests/golden/` diffs gate regressions.
///
/// # Example
///
/// ```
/// use ldis_experiments::report::Json;
///
/// let j = Json::obj([("bench", Json::str("art")), ("mpki", Json::num(38.25))]);
/// assert_eq!(j.render(), "{\"bench\": \"art\", \"mpki\": 38.25}");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the canonical form of NaN/infinite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer counter (u64 counters never lose precision).
    Uint(u64),
    /// A finite float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A float value; NaN and infinities canonicalize to `Null`.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// An unsigned integer value.
    pub fn uint(x: u64) -> Json {
        Json::Uint(x)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array value.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object value with insertion-ordered keys.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value compactly (objects and arrays on one line with a
    /// space after `:` and `,`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with each top- and second-level entry on its own
    /// line — the golden-snapshot format, tuned so `git diff` pinpoints
    /// the exact experiment row that moved.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        // Pretty mode expands the two outer levels; deeper rows stay
        // compact one-liners so a snapshot diff is one line per row.
        let expand = pretty && depth < 2;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) if !x.is_finite() => out.push_str("null"),
            Json::Num(x) => {
                let s = format!("{x}");
                out.push_str(&s);
                // "1" would read back as an integer; keep the float type
                // visible so snapshots distinguish counters from metrics.
                if !s.contains('.') && !s.contains('e') {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if !expand {
                            out.push(' ');
                        }
                    }
                    if expand {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                    }
                    item.write(out, depth + 1, pretty);
                }
                if expand && !items.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if !expand {
                            out.push(' ');
                        }
                    }
                    if expand {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                    }
                    Json::Str(k.clone()).write(out, depth + 1, false);
                    out.push_str(": ");
                    v.write(out, depth + 1, pretty);
                }
                if expand && !fields.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth));
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON text produced by [`Json::render`] /
    /// [`Json::render_pretty`] back into a value. The reader accepts any
    /// standard JSON (whitespace-insensitive, full string escapes), keeps
    /// object keys in document order, and reads non-negative integers
    /// without a fraction or exponent as [`Json::Uint`] — so a canonical
    /// rendering round-trips to an identical value:
    /// `Json::parse(&j.render()) == Ok(j)`.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input, including
    /// trailing garbage after the value — which is how the checkpoint
    /// journal detects truncated records.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {}", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(word.as_bytes()))
    {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("unterminated string at byte {}", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // The canonical renderer only emits \u for control
                        // characters; reject surrogates rather than pair them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u code point at byte {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // boundary math is always valid).
                let rest = bytes.get(*pos..).unwrap_or(&[]);
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let Some(c) = s.chars().next() else {
                    return Err(format!("unterminated string at byte {}", *pos));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let digits = bytes.get(start..*pos).unwrap_or(&[]);
    let text =
        std::str::from_utf8(digits).map_err(|_| format!("invalid number at byte {start}"))?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::Uint(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:.prec$}")
    }
}

/// Formats a percentage with one decimal and sign.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:+.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "value"]);
        t.row(vec!["longname".into(), "1.0".into()]);
        t.row(vec!["x".into(), "123.4".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("longname"));
        assert!(s.contains("note: hello"));
        // Right-aligned numeric column: "  1.0" padded to width 5.
        assert!(s.contains("  1.0"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_and_includes_all_rows() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["with,comma".into(), "quote\"d".into()]);
        t.note("notes are not exported");
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,v\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"d\""));
        assert!(!csv.contains("notes"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_renders_canonically() {
        let j = Json::obj([
            ("name", Json::str("quick")),
            ("count", Json::uint(42)),
            ("mpki", Json::num(1.5)),
            ("whole", Json::num(2.0)),
            ("bad", Json::num(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("rows", Json::arr([Json::uint(1), Json::uint(2)])),
        ]);
        assert_eq!(
            j.render(),
            "{\"name\": \"quick\", \"count\": 42, \"mpki\": 1.5, \"whole\": 2.0, \
             \"bad\": null, \"flag\": true, \"rows\": [1, 2]}"
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_pretty_is_one_line_per_row_and_stable() {
        let row = |n: u64| Json::obj([("id", Json::uint(n))]);
        let j = Json::obj([("rows", Json::arr([row(1), row(2)]))]);
        let p = j.render_pretty();
        assert_eq!(
            p,
            "{\n  \"rows\": [\n    {\"id\": 1},\n    {\"id\": 2}\n  ]\n}\n"
        );
        assert_eq!(p, j.render_pretty(), "rendering must be byte-stable");
        assert_eq!(Json::obj::<String>([]).render_pretty(), "{}\n");
    }

    #[test]
    fn json_shortest_roundtrip_floats_are_exact() {
        // The renderer must not round: distinct bit patterns give
        // distinct text, so any numeric drift shows up in a golden diff.
        let a = 0.1f64;
        let b = 0.1f64 + f64::EPSILON;
        assert_ne!(Json::num(a).render(), Json::num(b).render());
    }

    #[test]
    fn json_parse_round_trips_canonical_renderings() {
        let j = Json::obj([
            ("name", Json::str("quick \"q\" \\ line\nend\u{1}")),
            ("count", Json::uint(u64::MAX)),
            ("mpki", Json::num(38.25)),
            ("tiny", Json::num(5e-324)),
            ("neg", Json::num(-5.0)),
            ("whole", Json::num(2.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::arr([Json::uint(1), Json::obj([("k", Json::str("v"))])]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<String>([])),
        ]);
        assert_eq!(Json::parse(&j.render()), Ok(j.clone()));
        assert_eq!(Json::parse(&j.render_pretty()), Ok(j));
    }

    #[test]
    fn json_parse_preserves_float_bits_and_uint_type() {
        let x = 0.1f64 + f64::EPSILON;
        match Json::parse(&Json::num(x).render()) {
            Ok(Json::Num(y)) => assert_eq!(x.to_bits(), y.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        assert_eq!(Json::parse("42"), Ok(Json::Uint(42)));
        assert_eq!(Json::parse("42.0"), Ok(Json::Num(42.0)));
    }

    #[test]
    fn json_parse_rejects_malformed_and_truncated_input() {
        for bad in [
            "",
            "{",
            "{\"a\": 1",
            "{\"a\" 1}",
            "[1, 2",
            "\"unterminated",
            "nul",
            "{\"a\": 1} trailing",
            "1e",
            "{\"a\": \"b\\u12\"}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
        // A record cut mid-way by a crash is malformed, not silently empty.
        let full = Json::obj([("cell", Json::uint(9)), ("seed", Json::uint(7))]).render();
        for cut in 1..full.len() {
            assert!(
                Json::parse(full.get(..cut).unwrap_or("")).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::NAN, 2), "-");
        assert_eq!(fmt_pct(12.34), "+12.3%");
        assert_eq!(fmt_pct(-3.0), "-3.0%");
        assert_eq!(fmt_pct(f64::NAN), "-");
    }
}
