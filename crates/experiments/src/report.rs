//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table: title, header row, data rows.
///
/// # Example
///
/// ```
/// use ldis_experiments::report::Table;
///
/// let mut t = Table::new("Demo", &["bench", "mpki"]);
/// t.row(vec!["art".into(), "38.3".into()]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("art"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note printed below the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row + data rows; notes omitted).
    /// Cells containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders the table with aligned columns (first column
    /// left-justified, the rest right-justified).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.len().max(total.min(100))));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:.prec$}")
    }
}

/// Formats a percentage with one decimal and sign.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "-".to_owned()
    } else {
        format!("{x:+.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "value"]);
        t.row(vec!["longname".into(), "1.0".into()]);
        t.row(vec!["x".into(), "123.4".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("longname"));
        assert!(s.contains("note: hello"));
        // Right-aligned numeric column: "  1.0" padded to width 5.
        assert!(s.contains("  1.0"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_and_includes_all_rows() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(vec!["plain".into(), "1".into()]);
        t.row(vec!["with,comma".into(), "quote\"d".into()]);
        t.note("notes are not exported");
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,v\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"d\""));
        assert!(!csv.contains("notes"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::NAN, 2), "-");
        assert_eq!(fmt_pct(12.34), "+12.3%");
        assert_eq!(fmt_pct(-3.0), "-3.0%");
        assert_eq!(fmt_pct(f64::NAN), "-");
    }
}
