//! Figure 6: reduction in MPKI with the three LDIS configurations.

use crate::report::{fmt_f, fmt_pct, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::stats::percent_reduction;
use ldis_workloads::memory_intensive;

/// Per-benchmark MPKI under the baseline and the three LDIS configurations.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline 1 MB MPKI.
    pub base: f64,
    /// LDIS-Base MPKI.
    pub ldis_base: f64,
    /// LDIS-MT MPKI.
    pub ldis_mt: f64,
    /// LDIS-MT-RC MPKI.
    pub ldis_mt_rc: f64,
}

impl Fig6Row {
    /// Percentage MPKI reductions (base, MT, MT-RC) relative to baseline.
    pub fn reductions(&self) -> (f64, f64, f64) {
        (
            percent_reduction(self.base, self.ldis_base),
            percent_reduction(self.base, self.ldis_mt),
            percent_reduction(self.base, self.ldis_mt_rc),
        )
    }
}

/// Runs the Figure 6 matrix: 16 benchmarks × 4 configurations.
pub fn data(cfg: &RunConfig) -> Vec<Fig6Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let base = run_baseline(b, cfg, 1 << 20);
        let ldis_base = run(b, cfg, || DistillCache::new(DistillConfig::ldis_base()));
        let ldis_mt = run(b, cfg, || DistillCache::new(DistillConfig::ldis_mt()));
        let ldis_mt_rc = run(b, cfg, || DistillCache::new(DistillConfig::ldis_mt_rc()));
        Fig6Row {
            benchmark: b.name.to_owned(),
            base: base.mpki,
            ldis_base: ldis_base.mpki,
            ldis_mt: ldis_mt.mpki,
            ldis_mt_rc: ldis_mt_rc.mpki,
        }
    })
}

/// The paper's summary metric: percentage reduction of the *arithmetic
/// mean* MPKI over the given rows, per configuration.
pub fn mean_mpki_reductions(rows: &[Fig6Row]) -> (f64, f64, f64) {
    let n = rows.len() as f64;
    let mean = |f: fn(&Fig6Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let base = mean(|r| r.base);
    (
        percent_reduction(base, mean(|r| r.ldis_base)),
        percent_reduction(base, mean(|r| r.ldis_mt)),
        percent_reduction(base, mean(|r| r.ldis_mt_rc)),
    )
}

/// Renders the Figure 6 report.
pub fn report(rows: &[Fig6Row]) -> String {
    let mut t = Table::new(
        "Figure 6: % reduction in MPKI with three LDIS configurations",
        &["bench", "base-mpki", "LDIS-Base", "LDIS-MT", "LDIS-MT-RC"],
    );
    for r in rows {
        let (b, mt, rc) = r.reductions();
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base, 2),
            fmt_pct(b),
            fmt_pct(mt),
            fmt_pct(rc),
        ]);
    }
    let all = mean_mpki_reductions(rows);
    let no_mcf: Vec<Fig6Row> = rows
        .iter()
        .filter(|r| r.benchmark != "mcf")
        .cloned()
        .collect();
    let nomcf = mean_mpki_reductions(&no_mcf);
    t.row(vec![
        "avg".into(),
        String::new(),
        fmt_pct(all.0),
        fmt_pct(all.1),
        fmt_pct(all.2),
    ]);
    t.row(vec![
        "avgNomcf".into(),
        String::new(),
        fmt_pct(nomcf.0),
        fmt_pct(nomcf.1),
        fmt_pct(nomcf.2),
    ]);
    t.note("paper: LDIS-Base 22.8%, LDIS-MT-RC 30.7% mean-MPKI reduction; swim pathological without the reverter");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn reverter_clamps_the_swim_pathology() {
        let b = spec2000::by_name("swim").unwrap();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let no_rc = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_mt()));
        let rc = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_mt_rc()));
        assert!(
            no_rc.mpki > base.mpki * 1.3,
            "LDIS without reverter must hurt swim: {} vs {}",
            no_rc.mpki,
            base.mpki
        );
        assert!(
            rc.mpki < no_rc.mpki * 0.75,
            "reverter must recover most of the loss: {} vs {}",
            rc.mpki,
            no_rc.mpki
        );
    }

    #[test]
    fn ldis_helps_pointer_chasing() {
        let b = spec2000::by_name("health").unwrap();
        let cfg = RunConfig::quick().with_accesses(400_000);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let mt = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_mt()));
        let red = percent_reduction(base.mpki, mt.mpki);
        assert!(red > 25.0, "health reduction {red}% too small");
    }

    #[test]
    fn report_includes_summary_rows() {
        let rows = vec![
            Fig6Row {
                benchmark: "a".into(),
                base: 10.0,
                ldis_base: 8.0,
                ldis_mt: 7.0,
                ldis_mt_rc: 7.0,
            },
            Fig6Row {
                benchmark: "mcf".into(),
                base: 100.0,
                ldis_base: 90.0,
                ldis_mt: 80.0,
                ldis_mt_rc: 80.0,
            },
        ];
        let (b, mt, rc) = mean_mpki_reductions(&rows);
        assert!((b - (110.0 - 98.0) / 110.0 * 100.0).abs() < 1e-9);
        assert!(mt > b);
        assert_eq!(mt, rc);
        let s = report(&rows);
        assert!(s.contains("avgNomcf"));
    }
}
