//! Fault-injection campaign: soft-error rates × protection schemes.
//!
//! For each benchmark the campaign first runs a fault-free distill cache,
//! then sweeps every [`ProtectionScheme`] across a range of per-access
//! fault rates with the self-checker enabled. The report shows the MPKI
//! cost of corrupted metadata, the coverage each scheme achieves, and
//! whether the cache fell back to traditional mode. Everything derives
//! from the run seed: the same seed and rate reproduce the campaign
//! byte for byte.

use crate::report::{fmt_f, Json, Table};
use crate::{for_each_benchmark, RunConfig};
use ldis_cache::{FaultStats, Hierarchy, ProtectionScheme, SecondLevel as _};
use ldis_distill::{DistillCache, DistillConfig, ResilienceConfig};
use ldis_workloads::{memory_intensive, Benchmark, TraceLength};

/// The swept per-access fault rates (0 is the fault-free reference).
pub const FAULT_RATES: &[f64] = &[1e-5, 1e-4, 1e-3];

/// The swept protection schemes.
pub const SCHEMES: &[ProtectionScheme] = &[
    ProtectionScheme::Unprotected,
    ProtectionScheme::Parity,
    ProtectionScheme::Secded,
];

/// One benchmark × scheme × rate campaign point.
#[derive(Clone, Debug)]
pub struct ResiliencePoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Protection scheme under test.
    pub scheme: ProtectionScheme,
    /// Injected faults per access.
    pub fault_rate: f64,
    /// Demand MPKI under faults.
    pub mpki: f64,
    /// MPKI of the fault-free run of the same benchmark.
    pub mpki_fault_free: f64,
    /// Fault accounting (injection and fate counters).
    pub faults: FaultStats,
    /// Entries in the degradation log.
    pub events: u64,
    /// Whether the cache force-reverted to traditional mode.
    pub degraded: bool,
}

impl ResiliencePoint {
    /// MPKI increase over the fault-free run, in percent.
    pub fn mpki_delta_pct(&self) -> f64 {
        if self.mpki_fault_free == 0.0 {
            0.0
        } else {
            (self.mpki - self.mpki_fault_free) / self.mpki_fault_free * 100.0
        }
    }
}

/// The campaign's benchmark subset: one sparse pointer chase, one mixed
/// workload and one dense-footprint workload keep the sweep affordable
/// while exercising every distillation mechanism.
fn subset() -> Vec<Benchmark> {
    memory_intensive()
        .into_iter()
        .filter(|b| matches!(b.name, "health" | "twolf" | "swim"))
        .collect()
}

fn run_point(
    benchmark: &Benchmark,
    cfg: &RunConfig,
    resilience: Option<ResilienceConfig>,
) -> (f64, FaultStats, u64, bool) {
    let mut dc = DistillCache::new(DistillConfig::hpca2007_default());
    if let Some(rcfg) = resilience {
        dc = dc.with_resilience(rcfg);
    }
    // The workload seed derives from the cache label only — every scheme ×
    // rate point of a benchmark replays the *same* trace, so Δmpki always
    // compares like with like.
    let mut workload = (benchmark.make)(cfg.seed_for(benchmark, dc.name()));
    let mut hier = Hierarchy::hpca2007(dc);
    if cfg.warmup > 0 {
        workload.drive(&mut hier, TraceLength::accesses(cfg.warmup));
        hier.reset_stats();
    }
    workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));
    let mpki = hier.mpki();
    match hier.l2().health() {
        Some(h) => (mpki, h.faults, h.events.len() as u64, h.degraded),
        None => (mpki, FaultStats::default(), 0, false),
    }
}

/// Runs the full campaign: per benchmark, a fault-free reference plus
/// every scheme × rate combination. Deterministic in `cfg.seed`.
pub fn data(cfg: &RunConfig) -> Vec<ResiliencePoint> {
    let benches = subset();
    let per_bench = for_each_benchmark(&benches, |b| {
        let (fault_free, _, _, _) = run_point(b, cfg, None);
        let mut points = Vec::new();
        for &scheme in SCHEMES {
            for &rate in FAULT_RATES {
                let rcfg = ResilienceConfig::default()
                    .with_fault_rate(rate)
                    .with_protection(scheme)
                    .with_seed(cfg.seed);
                let (mpki, faults, events, degraded) = run_point(b, cfg, Some(rcfg));
                points.push(ResiliencePoint {
                    benchmark: b.name.to_owned(),
                    scheme,
                    fault_rate: rate,
                    mpki,
                    mpki_fault_free: fault_free,
                    faults,
                    events,
                    degraded,
                });
            }
        }
        points
    });
    per_bench.into_iter().flatten().collect()
}

/// The golden snapshot: every campaign point's MPKI, fault accounting and
/// degradation outcome at the given configuration. Compared against
/// `tests/golden/resilience.json`.
pub fn snapshot(cfg: &RunConfig) -> Json {
    let rows = data(cfg).into_iter().map(|p| {
        Json::obj([
            ("benchmark", Json::str(p.benchmark.clone())),
            ("scheme", Json::str(p.scheme.to_string())),
            ("fault_rate", Json::num(p.fault_rate)),
            ("mpki", Json::num(p.mpki)),
            ("mpki_fault_free", Json::num(p.mpki_fault_free)),
            ("injected", Json::uint(p.faults.injected)),
            ("corrected", Json::uint(p.faults.corrected)),
            ("detected", Json::uint(p.faults.detected)),
            ("silent", Json::uint(p.faults.silent)),
            ("masked", Json::uint(p.faults.masked)),
            ("events", Json::uint(p.events)),
            ("degraded", Json::Bool(p.degraded)),
        ])
    });
    Json::obj([
        ("experiment", Json::str("resilience")),
        ("accesses", Json::uint(cfg.accesses)),
        ("seed", Json::uint(cfg.seed)),
        ("rows", Json::arr(rows)),
    ])
}

/// Renders the campaign as a resilience report.
pub fn report(points: &[ResiliencePoint]) -> String {
    let mut t = Table::new(
        "Resilience campaign — metadata soft errors vs. protection scheme",
        &[
            "bench", "protect", "rate", "mpki", "Δmpki", "inject", "corr", "detect", "silent",
            "masked", "cover", "events", "mode",
        ],
    );
    for p in points {
        t.row(vec![
            p.benchmark.clone(),
            p.scheme.to_string(),
            format!("{:.0e}", p.fault_rate),
            fmt_f(p.mpki, 3),
            format!("{:+.2}%", p.mpki_delta_pct()),
            p.faults.injected.to_string(),
            p.faults.corrected.to_string(),
            p.faults.detected.to_string(),
            p.faults.silent.to_string(),
            p.faults.masked.to_string(),
            fmt_f(p.faults.coverage(), 2),
            p.events.to_string(),
            if p.degraded { "degraded" } else { "distill" }.to_owned(),
        ]);
    }
    t.note("Δmpki is relative to the fault-free run of the same benchmark.");
    t.note("cover = (corrected + detected) / observable faults; masked faults hit dead state.");
    t.note("mode 'degraded' = the cache fell back to a traditional organization.");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig::quick().with_accesses(30_000)
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = tiny_cfg();
        let a = report(&data(&cfg));
        let b = report(&data(&cfg));
        assert_eq!(a, b, "same seed and rates must reproduce byte for byte");
    }

    #[test]
    fn campaign_covers_the_full_matrix() {
        let points = data(&tiny_cfg());
        assert_eq!(points.len(), 3 * SCHEMES.len() * FAULT_RATES.len());
        // Every point carries its fault-free reference for the delta.
        for p in &points {
            assert!(
                p.mpki_fault_free > 0.0,
                "{}: reference must run",
                p.benchmark
            );
        }
    }

    #[test]
    fn secded_never_degrades_and_has_full_coverage() {
        let points = data(&tiny_cfg());
        for p in points
            .iter()
            .filter(|p| p.scheme == ProtectionScheme::Secded)
        {
            assert!(
                !p.degraded,
                "{}: SECDED corrects every single-bit flip",
                p.benchmark
            );
            assert_eq!(p.faults.silent, 0);
            assert_eq!(p.faults.detected, 0);
            assert!((p.faults.coverage() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn high_rate_parity_detects_and_logs() {
        let points = data(&tiny_cfg());
        let p = points
            .iter()
            .find(|p| p.scheme == ProtectionScheme::Parity && p.fault_rate == 1e-3)
            .expect("matrix includes parity at 1e-3");
        assert!(p.faults.injected > 0);
        assert!(p.faults.detected > 0, "parity detects observable flips");
        assert_eq!(p.faults.silent, 0, "parity never misses a single-bit flip");
        assert!(p.events > 0, "detections are logged");
    }

    #[test]
    fn report_renders_every_point() {
        let cfg = tiny_cfg();
        let points = data(&cfg);
        let text = report(&points);
        assert_eq!(
            text.lines().filter(|l| l.contains("e-")).count(),
            points.len(),
            "one row per campaign point"
        );
        assert!(text.contains("parity"));
        assert!(text.contains("secded"));
    }
}
