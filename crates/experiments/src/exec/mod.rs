//! Crash-safe sweep executor: panic isolation, bounded deterministic
//! retry, watchdog timeouts and quarantine — the execution layer under
//! the full benchmark × configuration sweep (`ldis-experiments sweep`).
//!
//! The plain [`parallel`](crate::parallel) engine already isolates each
//! cell behind `catch_unwind`; this module turns isolated failures into a
//! *recovery protocol* instead of a propagated panic:
//!
//! * **Retry.** A panicked cell replays from its derived seed up to
//!   [`ExecPolicy::max_retries`] more times. Cells are pure functions of
//!   their seed, so a genuine simulator bug fails every attempt while a
//!   resource blip (stack exhaustion from a runaway recursion guard, an
//!   allocator failure) may clear.
//! * **Divergence check.** A cell that panicked and then succeeded is
//!   replayed once more; the two successful results must be bit-identical
//!   (`PartialEq` over every counter) or the cell is quarantined as
//!   [`CellFailure::Nondeterministic`] — a result that changes between
//!   replays cannot be trusted into a golden snapshot.
//! * **Watchdog.** With a [`ExecPolicy::cell_timeout_ms`] budget, a
//!   monitor loop on the collector thread marks over-budget cells
//!   [`CellFailure::Hung`] and abandons them. Hung cells are *never*
//!   retried — the stuck worker thread cannot be reclaimed, so a retry
//!   would only leak another one; instead a replacement worker is spawned
//!   so pool capacity survives the hang.
//! * **Quarantine.** The run always completes: every cell resolves to
//!   `Ok(result)` or a typed [`CellFailure`], and downstream reporting
//!   (golden comparison, the quarantine report) works over the survivors.
//!
//! Results are deterministic at every thread count for the same reason
//! the plain sweep is: each cell's fate depends only on its own item (and
//! its injected faults), never on scheduling order.
//!
//! Checkpointing lives in [`journal`]: the caller passes the set of
//! already-completed cells (from a resumed journal) plus an
//! `on_complete` hook that appends each newly finished cell.

pub mod journal;

use crate::parallel::{panic_message, CellPanic};
use ldis_distill::CellFailure;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
// ldis: allow(D1, "the watchdog measures wall-clock hangs; simulated state never reads this clock")
use std::time::Instant;

/// How the crash-safe executor runs a matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker thread count (at least 1).
    pub threads: usize,
    /// Additional replays a panicked cell gets before it is quarantined
    /// as [`CellFailure::Panicked`] (so a cell runs at most
    /// `1 + max_retries` fallible attempts, plus one confirmation replay
    /// after a recovery).
    pub max_retries: u32,
    /// Per-cell wall-clock budget in milliseconds; `None` disables the
    /// watchdog (a genuinely hung cell then hangs the run, exactly as it
    /// would without this module).
    pub cell_timeout_ms: Option<u64>,
    /// Deterministic fault injection for tests and repro runs.
    pub faults: FaultPlan,
}

impl ExecPolicy {
    /// A policy with `threads` workers, 2 retries, no watchdog and no
    /// injected faults.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
            max_retries: 2,
            cell_timeout_ms: None,
            faults: FaultPlan::none(),
        }
    }
}

/// What an injected fault does to its cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the simulation starts.
    Panic,
    /// Sleep forever; only a watchdog budget gets the cell quarantined.
    Hang,
}

/// One injected fault: `kind` fires on the first `attempts` attempts of
/// `cell`, after which the cell runs clean. `attempts >= 1 + max_retries`
/// makes the failure permanent; smaller values exercise retry recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Matrix cell index the fault targets.
    pub cell: usize,
    /// What happens.
    pub kind: FaultKind,
    /// Number of leading attempts that fail.
    pub attempts: u32,
}

/// A deterministic fault campaign: the same plan against the same matrix
/// produces the same outcomes at any thread count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// No injected faults (the production configuration).
    pub fn none() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// A plan with the given faults.
    pub fn new(faults: Vec<InjectedFault>) -> Self {
        FaultPlan { faults }
    }

    /// Parses the `--fault` CLI grammar: a comma-separated list of
    /// `CELL:KIND[:ATTEMPTS]` entries where KIND is `panic` or `hang` and
    /// ATTEMPTS defaults to 1 (fail once, then recover).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let mut parts = entry.trim().split(':');
            let cell = parts
                .next()
                .and_then(|c| c.parse::<usize>().ok())
                .ok_or_else(|| format!("fault '{entry}': expected CELL:KIND[:ATTEMPTS]"))?;
            let kind = match parts.next() {
                Some("panic") => FaultKind::Panic,
                Some("hang") => FaultKind::Hang,
                other => {
                    return Err(format!(
                        "fault '{entry}': kind must be 'panic' or 'hang', got {other:?}"
                    ))
                }
            };
            let attempts = match parts.next() {
                None => 1,
                Some(n) => n.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("fault '{entry}': ATTEMPTS must be a positive integer")
                })?,
            };
            if parts.next().is_some() {
                return Err(format!("fault '{entry}': too many ':' fields"));
            }
            faults.push(InjectedFault {
                cell,
                kind,
                attempts,
            });
        }
        Ok(FaultPlan { faults })
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault (if any) that fires on `cell`'s `attempt` (1-based).
    fn action(&self, cell: usize, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.cell == cell && attempt <= f.attempts)
            .map(|f| f.kind)
    }
}

/// The outcome of one crash-safe matrix run.
#[derive(Debug)]
pub struct ExecReport<T> {
    /// Per-cell outcomes in canonical matrix order: the result, or the
    /// typed failure that quarantined the cell.
    pub outcomes: Vec<Result<T, CellFailure>>,
    /// Cells restored from the checkpoint journal (not re-executed).
    pub resumed: usize,
    /// Cells executed this run (successes and failures).
    pub executed: usize,
    /// Cells that needed at least one retry.
    pub retried: usize,
}

impl<T> ExecReport<T> {
    /// Quarantined cells as `(cell index, failure)` in matrix order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &CellFailure)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().err().map(|f| (i, f)))
    }

    /// Number of quarantined cells.
    pub fn failed(&self) -> usize {
        self.failures().count()
    }

    /// Whether every cell produced a result.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }
}

/// A unit of work handed to a worker: one attempt of one cell.
#[derive(Clone, Copy, Debug)]
struct Task {
    cell: usize,
    attempt: u32,
}

/// Worker → collector messages.
enum Msg<T> {
    Started {
        cell: usize,
    },
    Finished {
        cell: usize,
        outcome: Result<T, CellPanic>,
    },
}

/// Per-cell recovery state on the collector.
struct Recovery<T> {
    /// Fallible attempts that panicked so far.
    panics: u32,
    /// Total runs executed (attempts + confirmation replays).
    runs: u32,
    /// A successful post-panic result awaiting its confirmation replay.
    candidate: Option<T>,
    /// Last panic message seen.
    last_panic: String,
}

impl<T> Recovery<T> {
    fn new() -> Self {
        Recovery {
            panics: 0,
            runs: 0,
            candidate: None,
            last_panic: String::new(),
        }
    }
}

/// Runs one attempt of one cell under panic isolation, applying the
/// fault plan first.
fn run_cell<I, T, F>(
    items: &[I],
    job: &F,
    faults: &FaultPlan,
    cell: usize,
    attempt: u32,
) -> Result<T, CellPanic>
where
    F: Fn(usize, &I) -> T,
{
    catch_unwind(AssertUnwindSafe(|| {
        match faults.action(cell, attempt) {
            Some(FaultKind::Panic) => {
                // ldis: allow(P1, "deliberate injected fault, caught by the cell's catch_unwind")
                panic!("injected fault: cell {cell} attempt {attempt}")
            }
            Some(FaultKind::Hang) => loop {
                // A real hang never returns; the watchdog abandons us.
                std::thread::sleep(Duration::from_secs(3600));
            },
            None => {}
        }
        match items.get(cell) {
            Some(item) => job(cell, item),
            // Unreachable: tasks are only created for in-range cells.
            None => {
                // ldis: allow(P1, "harness invariant, not simulator state; caught by catch_unwind")
                panic!("cell {cell} out of range")
            }
        }
    }))
    .map_err(|payload| CellPanic {
        message: panic_message(payload.as_ref()),
    })
}

/// Spawns one detached worker pulling tasks from the shared queue.
///
/// Workers are deliberately *not* scoped: a hung worker must be leakable
/// (abandoned mid-cell) while the run completes, which a scoped join
/// would forbid. All captured state is `Arc`-owned, so leaking a worker
/// leaks only its own stack and clones.
fn spawn_worker<I, T, F>(
    items: Arc<Vec<I>>,
    job: Arc<F>,
    faults: Arc<FaultPlan>,
    tasks: Arc<Mutex<mpsc::Receiver<Task>>>,
    results: mpsc::Sender<Msg<T>>,
) where
    I: Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(usize, &I) -> T + Send + Sync + 'static,
{
    std::thread::spawn(move || loop {
        let task = {
            let rx = tasks
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match rx.recv() {
                Ok(t) => t,
                Err(_) => break, // queue closed: run is over
            }
        };
        if results.send(Msg::Started { cell: task.cell }).is_err() {
            break;
        }
        let outcome = run_cell(
            items.as_slice(),
            job.as_ref(),
            &faults,
            task.cell,
            task.attempt,
        );
        if results
            .send(Msg::Finished {
                cell: task.cell,
                outcome,
            })
            .is_err()
        {
            break;
        }
    });
}

/// The watchdog's wall-clock read, confined to one waived helper so the
/// deterministic-simulation lint (D1) can see exactly where time enters.
fn wall_now() -> Instant // ldis: allow(D1, "watchdog wall-clock read; never influences simulated state")
{
    Instant::now() // ldis: allow(D1, "watchdog wall-clock read; never influences simulated state")
}

/// Runs `job` over every cell of `items` not already in `completed`,
/// with panic isolation, bounded retry, divergence checking and (when a
/// budget is set) watchdog timeouts. Returns every cell's outcome in
/// canonical matrix order; `completed` cells are passed through as
/// `Ok` without re-execution.
///
/// `on_complete(cell, result)` fires on the collector thread for each
/// *newly executed* successful cell, in completion order — the journal
/// appends there. Completion order varies with thread count; the final
/// outcome vector does not.
pub fn run_cells<I, T, F>(
    items: Vec<I>,
    job: F,
    policy: &ExecPolicy,
    mut completed: BTreeMap<usize, T>,
    mut on_complete: impl FnMut(usize, &T),
) -> ExecReport<T>
where
    I: Send + Sync + 'static,
    T: Clone + PartialEq + Send + 'static,
    F: Fn(usize, &I) -> T + Send + Sync + 'static,
{
    let n = items.len();
    completed.retain(|&cell, _| cell < n);
    let resumed = completed.len();
    let pending: Vec<usize> = (0..n).filter(|i| !completed.contains_key(i)).collect();
    let executed = pending.len();
    let mut outcomes: Vec<Option<Result<T, CellFailure>>> = (0..n).map(|_| None).collect();
    for (cell, value) in completed {
        if let Some(slot) = outcomes.get_mut(cell) {
            *slot = Some(Ok(value));
        }
    }

    let mut retried = 0;
    if !pending.is_empty() {
        let items = Arc::new(items);
        let job = Arc::new(job);
        let faults = Arc::new(policy.faults.clone());
        let (task_tx, task_rx) = mpsc::channel::<Task>();
        let (result_tx, result_rx) = mpsc::channel::<Msg<T>>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        for &cell in &pending {
            let _ = task_tx.send(Task { cell, attempt: 1 });
        }
        let workers = policy.threads.clamp(1, pending.len());
        for _ in 0..workers {
            spawn_worker(
                Arc::clone(&items),
                Arc::clone(&job),
                Arc::clone(&faults),
                Arc::clone(&task_rx),
                result_tx.clone(),
            );
        }
        // With a watchdog we must keep a result sender to equip
        // replacement workers, so disconnection never fires and hangs are
        // caught by deadline instead. Without one, dropping our sender
        // lets a dead pool surface as `ResultLost`.
        let budget = policy.cell_timeout_ms.map(Duration::from_millis);
        let spare_result_tx = budget.map(|_| result_tx.clone());
        drop(result_tx);

        let mut states: BTreeMap<usize, Recovery<T>> = BTreeMap::new();
        let mut inflight: BTreeMap<usize, _> = BTreeMap::new();
        let mut outstanding = pending.len();
        let tick = budget
            .map(|b| (b / 4).clamp(Duration::from_millis(5), Duration::from_millis(100)))
            .unwrap_or(Duration::from_secs(3600));

        while outstanding > 0 {
            let msg = if budget.is_some() {
                match result_rx.recv_timeout(tick) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match result_rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                }
            };
            match msg {
                Some(Msg::Started { cell }) => {
                    if let Some(b) = budget {
                        inflight.insert(cell, wall_now() + b);
                    }
                }
                Some(Msg::Finished { cell, outcome }) => {
                    inflight.remove(&cell);
                    let resolved = outcomes.get(cell).is_some_and(Option::is_some);
                    if resolved {
                        continue; // late result of an already-quarantined cell
                    }
                    let state = states.entry(cell).or_insert_with(Recovery::new);
                    state.runs += 1;
                    let resolution: Option<Result<T, CellFailure>> = match outcome {
                        Ok(value) => {
                            if let Some(expected) = state.candidate.take() {
                                // Confirmation replay of a recovered cell.
                                if value == expected {
                                    Some(Ok(value))
                                } else {
                                    Some(Err(CellFailure::Nondeterministic {
                                        attempts: state.runs,
                                        detail: "two successful replays produced different results"
                                            .to_owned(),
                                    }))
                                }
                            } else if state.panics == 0 {
                                // Clean first run: trusted without replay,
                                // exactly like the plain sweep.
                                Some(Ok(value))
                            } else {
                                // Recovered after panics: confirm by replay.
                                state.candidate = Some(value);
                                let _ = task_tx.send(Task {
                                    cell,
                                    attempt: state.panics + 2,
                                });
                                None
                            }
                        }
                        Err(failure) => {
                            if state.candidate.take().is_some() {
                                // The confirmation replay itself panicked.
                                Some(Err(CellFailure::Nondeterministic {
                                    attempts: state.runs,
                                    detail: format!(
                                        "confirmation replay panicked: {}",
                                        failure.message
                                    ),
                                }))
                            } else {
                                state.panics += 1;
                                state.last_panic = failure.message;
                                if state.panics <= policy.max_retries {
                                    if state.panics == 1 {
                                        retried += 1;
                                    }
                                    let _ = task_tx.send(Task {
                                        cell,
                                        attempt: state.panics + 1,
                                    });
                                    None
                                } else {
                                    Some(Err(CellFailure::Panicked {
                                        attempts: state.panics,
                                        message: state.last_panic.clone(),
                                    }))
                                }
                            }
                        }
                    };
                    if let Some(resolution) = resolution {
                        if let Ok(value) = &resolution {
                            on_complete(cell, value);
                        }
                        if let Some(slot) = outcomes.get_mut(cell) {
                            *slot = Some(resolution);
                        }
                        states.remove(&cell);
                        outstanding -= 1;
                    }
                }
                None => {} // watchdog tick
            }
            // Watchdog scan: quarantine over-budget cells and replace
            // their (permanently stuck) workers.
            if let (Some(b), Some(spare)) = (budget, &spare_result_tx) {
                let now = wall_now();
                let hung: Vec<usize> = inflight
                    .iter()
                    .filter(|(_, deadline)| **deadline <= now)
                    .map(|(&cell, _)| cell)
                    .collect();
                for cell in hung {
                    inflight.remove(&cell);
                    let resolved = outcomes.get(cell).is_some_and(Option::is_some);
                    if resolved {
                        continue;
                    }
                    if let Some(slot) = outcomes.get_mut(cell) {
                        *slot = Some(Err(CellFailure::Hung {
                            budget_ms: b.as_millis() as u64,
                        }));
                    }
                    states.remove(&cell);
                    outstanding -= 1;
                    spawn_worker(
                        Arc::clone(&items),
                        Arc::clone(&job),
                        Arc::clone(&faults),
                        Arc::clone(&task_rx),
                        spare.clone(),
                    );
                }
            }
        }
        // Task queue closes here (task_tx drops); idle workers drain out.
    }

    let outcomes: Vec<Result<T, CellFailure>> = outcomes
        .into_iter()
        .map(|slot| slot.unwrap_or(Err(CellFailure::ResultLost)))
        .collect();
    ExecReport {
        outcomes,
        resumed,
        executed,
        retried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn plain_job(cell: usize, item: &u64) -> u64 {
        cell as u64 * 1000 + item
    }

    #[test]
    fn clean_matrix_runs_once_per_cell_at_any_thread_count() {
        for threads in [1, 4] {
            let policy = ExecPolicy::with_threads(threads);
            let mut completions = Vec::new();
            let report = run_cells(items(12), plain_job, &policy, BTreeMap::new(), |c, v| {
                completions.push((c, *v));
            });
            assert_eq!(report.resumed, 0);
            assert_eq!(report.executed, 12);
            assert_eq!(report.retried, 0);
            assert!(report.all_ok());
            for (i, o) in report.outcomes.iter().enumerate() {
                assert_eq!(o.as_ref().ok(), Some(&plain_job(i, &(i as u64))));
            }
            completions.sort_unstable();
            assert_eq!(completions.len(), 12);
        }
    }

    #[test]
    fn resumed_cells_are_not_reexecuted() {
        let mut done = BTreeMap::new();
        done.insert(3usize, 999u64); // deliberately wrong value: must pass through untouched
        done.insert(7usize, 777u64);
        let policy = ExecPolicy::with_threads(2);
        let mut executed_cells = Vec::new();
        let report = run_cells(items(10), plain_job, &policy, done, |c, _| {
            executed_cells.push(c);
        });
        assert_eq!(report.resumed, 2);
        assert_eq!(report.executed, 8);
        assert_eq!(
            report.outcomes.get(3).and_then(|o| o.as_ref().ok()),
            Some(&999)
        );
        assert_eq!(
            report.outcomes.get(7).and_then(|o| o.as_ref().ok()),
            Some(&777)
        );
        executed_cells.sort_unstable();
        assert_eq!(executed_cells, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn permanent_panic_is_quarantined_with_attempt_count() {
        for threads in [1, 4] {
            let mut policy = ExecPolicy::with_threads(threads);
            policy.max_retries = 2;
            policy.faults = FaultPlan::new(vec![InjectedFault {
                cell: 5,
                kind: FaultKind::Panic,
                attempts: u32::MAX,
            }]);
            let report = run_cells(items(8), plain_job, &policy, BTreeMap::new(), |_, _| {});
            assert_eq!(report.failed(), 1);
            assert_eq!(report.retried, 1);
            match report.outcomes.get(5) {
                Some(Err(CellFailure::Panicked { attempts, message })) => {
                    assert_eq!(*attempts, 3, "1 initial + 2 retries");
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
            // Every other cell still completed.
            for (i, o) in report.outcomes.iter().enumerate() {
                if i != 5 {
                    assert_eq!(o.as_ref().ok(), Some(&plain_job(i, &(i as u64))));
                }
            }
        }
    }

    #[test]
    fn transient_panic_recovers_via_retry_and_confirmation() {
        for threads in [1, 4] {
            let mut policy = ExecPolicy::with_threads(threads);
            policy.faults = FaultPlan::new(vec![InjectedFault {
                cell: 2,
                kind: FaultKind::Panic,
                attempts: 1, // fail the first attempt only
            }]);
            let report = run_cells(items(6), plain_job, &policy, BTreeMap::new(), |_, _| {});
            assert!(report.all_ok(), "{:?}", report.outcomes.get(2));
            assert_eq!(report.retried, 1);
            assert_eq!(
                report.outcomes.get(2).and_then(|o| o.as_ref().ok()),
                Some(&plain_job(2, &2))
            );
        }
    }

    #[test]
    fn nondeterministic_recovery_is_quarantined() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A job whose result changes on every run: after the injected
        // panic clears, the retry and its confirmation replay disagree.
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut policy = ExecPolicy::with_threads(1);
        policy.faults = FaultPlan::new(vec![InjectedFault {
            cell: 0,
            kind: FaultKind::Panic,
            attempts: 1,
        }]);
        let report = run_cells(
            vec![0u64],
            |_, _| COUNTER.fetch_add(1, Ordering::Relaxed),
            &policy,
            BTreeMap::new(),
            |_, _| {},
        );
        match report.outcomes.first() {
            Some(Err(CellFailure::Nondeterministic { attempts, detail })) => {
                assert_eq!(*attempts, 3, "panic + retry + confirmation");
                assert!(detail.contains("different results"), "{detail}");
            }
            other => panic!("expected Nondeterministic, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_quarantines_hung_cells_and_the_run_completes() {
        for threads in [1, 2] {
            let mut policy = ExecPolicy::with_threads(threads);
            policy.cell_timeout_ms = Some(100);
            policy.faults = FaultPlan::new(vec![InjectedFault {
                cell: 1,
                kind: FaultKind::Hang,
                attempts: u32::MAX,
            }]);
            let report = run_cells(items(5), plain_job, &policy, BTreeMap::new(), |_, _| {});
            match report.outcomes.get(1) {
                Some(Err(CellFailure::Hung { budget_ms })) => assert_eq!(*budget_ms, 100),
                other => panic!("expected Hung, got {other:?}"),
            }
            // The replacement worker finished the rest of the matrix,
            // even at threads=1 where the original worker is stuck.
            for (i, o) in report.outcomes.iter().enumerate() {
                if i != 1 {
                    assert_eq!(
                        o.as_ref().ok(),
                        Some(&plain_job(i, &(i as u64))),
                        "cell {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_plan_parses_the_cli_grammar() {
        let plan = FaultPlan::parse("3:panic, 7:hang:2, 9:panic:5").expect("valid spec");
        assert_eq!(plan.action(3, 1), Some(FaultKind::Panic));
        assert_eq!(plan.action(3, 2), None);
        assert_eq!(plan.action(7, 2), Some(FaultKind::Hang));
        assert_eq!(plan.action(7, 3), None);
        assert_eq!(plan.action(9, 5), Some(FaultKind::Panic));
        assert_eq!(plan.action(4, 1), None);
        assert!(FaultPlan::parse("").expect("empty spec").is_empty());
        for bad in ["x:panic", "3:boom", "3:panic:0", "3:panic:1:9", "3"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn outcomes_are_identical_across_thread_counts_under_faults() {
        let faults = FaultPlan::new(vec![
            InjectedFault {
                cell: 2,
                kind: FaultKind::Panic,
                attempts: 1,
            },
            InjectedFault {
                cell: 6,
                kind: FaultKind::Panic,
                attempts: u32::MAX,
            },
        ]);
        let run = |threads: usize| {
            let mut policy = ExecPolicy::with_threads(threads);
            policy.faults = faults.clone();
            run_cells(items(9), plain_job, &policy, BTreeMap::new(), |_, _| {}).outcomes
        };
        assert_eq!(run(1), run(4));
    }
}
