//! Checksummed checkpoint journal for crash-safe sweeps.
//!
//! The journal is an append-only JSON-lines file. Line 1 is a header
//! naming the matrix (a [`matrix id`](crate::sweep) derived from the run
//! seed and shape); every further line records one completed cell:
//!
//! ```text
//! {"journal": "ldis-sweep", "version": 1, "matrix_id": ..., "cells": ..., "checksum": ...}
//! {"matrix_id": ..., "cell": 3, "seed": ..., "result": {...}, "checksum": ...}
//! ```
//!
//! Every line carries an FNV-1a checksum over its own canonical rendering
//! *minus* the checksum field, so a record is self-validating: a process
//! killed mid-append leaves a truncated or garbled final line that fails
//! either the JSON parse (the canonical parser rejects every strict
//! prefix of a record) or the checksum compare. On resume the journal
//! keeps every valid leading record, truncates the file back to the last
//! valid byte, and re-executes the discarded cells — so `--resume` after
//! a `SIGKILL` converges to the same bytes as an uninterrupted run.
//!
//! Floats round-trip exactly: results store `f64` values as raw bit
//! patterns (`to_bits`), never as decimal floats, so the resumed matrix
//! is bit-identical, not just close.

use crate::report::Json;
use crate::RunResult;
use ldis_cache::{HierarchyStats, L2Stats};
use ldis_mem::fnv1a;
use ldis_mem::stats::Histogram;
use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Journal format marker and version (line-1 fields).
const MAGIC: &str = "ldis-sweep";
const VERSION: u64 = 1;

/// Converts a value to and from the canonical [`Json`] tree, exactly:
/// `decode(encode(x)) == x` bit for bit, including float payloads.
pub trait CellCodec: Sized {
    /// Encodes the value.
    fn encode(&self) -> Json;
    /// Decodes a value; the message names the missing or mistyped field.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on any shape or type
    /// mismatch.
    fn decode(json: &Json) -> Result<Self, String>;
}

/// Looks up a field of a JSON object.
fn field<'a>(json: &'a Json, name: &str) -> Result<&'a Json, String> {
    match json {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{name}'")),
        _ => Err(format!("expected object while reading '{name}'")),
    }
}

/// A `u64` field.
fn uint_field(json: &Json, name: &str) -> Result<u64, String> {
    match field(json, name)? {
        Json::Uint(v) => Ok(*v),
        other => Err(format!(
            "field '{name}': expected unsigned integer, got {other:?}"
        )),
    }
}

/// A string field.
fn str_field<'a>(json: &'a Json, name: &str) -> Result<&'a str, String> {
    match field(json, name)? {
        Json::Str(s) => Ok(s),
        other => Err(format!("field '{name}': expected string, got {other:?}")),
    }
}

/// An `f64` field stored as its raw bit pattern.
fn float_bits_field(json: &Json, name: &str) -> Result<f64, String> {
    Ok(f64::from_bits(uint_field(json, name)?))
}

/// Encodes a histogram as its per-bin counts (`bins` entries).
fn encode_histogram(h: &Histogram) -> Json {
    Json::arr((0..h.len()).map(|bin| Json::uint(h.count(bin))))
}

/// Decodes a histogram from its per-bin counts.
fn decode_histogram(json: &Json, name: &str) -> Result<Histogram, String> {
    let Json::Arr(bins) = field(json, name)? else {
        return Err(format!("field '{name}': expected array of counts"));
    };
    let mut h = Histogram::new(bins.len());
    for (bin, count) in bins.iter().enumerate() {
        match count {
            Json::Uint(c) => h.set_count(bin, *c),
            other => {
                return Err(format!(
                    "field '{name}' bin {bin}: expected count, got {other:?}"
                ))
            }
        }
    }
    Ok(h)
}

impl CellCodec for RunResult {
    fn encode(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(self.benchmark.clone())),
            ("config", Json::str(self.config.clone())),
            ("mpki_bits", Json::uint(self.mpki.to_bits())),
            (
                "l2",
                Json::obj([
                    ("accesses", Json::uint(self.l2.accesses)),
                    ("loc_hits", Json::uint(self.l2.loc_hits)),
                    ("woc_hits", Json::uint(self.l2.woc_hits)),
                    ("hole_misses", Json::uint(self.l2.hole_misses)),
                    ("line_misses", Json::uint(self.l2.line_misses)),
                    ("compulsory_misses", Json::uint(self.l2.compulsory_misses)),
                    ("evictions", Json::uint(self.l2.evictions)),
                    ("writebacks", Json::uint(self.l2.writebacks)),
                    ("woc_installs", Json::uint(self.l2.woc_installs)),
                    ("distill_filtered", Json::uint(self.l2.distill_filtered)),
                    (
                        "words_used_at_evict",
                        encode_histogram(&self.l2.words_used_at_evict),
                    ),
                    (
                        "recency_before_change",
                        encode_histogram(&self.l2.recency_before_change),
                    ),
                ]),
            ),
            (
                "hierarchy",
                Json::obj([
                    ("instructions", Json::uint(self.hierarchy.instructions)),
                    ("l1d_accesses", Json::uint(self.hierarchy.l1d_accesses)),
                    ("l1d_hits", Json::uint(self.hierarchy.l1d_hits)),
                    (
                        "l1d_sector_misses",
                        Json::uint(self.hierarchy.l1d_sector_misses),
                    ),
                    ("l1d_misses", Json::uint(self.hierarchy.l1d_misses)),
                    ("l1i_accesses", Json::uint(self.hierarchy.l1i_accesses)),
                    ("l1i_hits", Json::uint(self.hierarchy.l1i_hits)),
                ]),
            ),
        ])
    }

    fn decode(json: &Json) -> Result<Self, String> {
        let l2_json = field(json, "l2")?;
        let hier_json = field(json, "hierarchy")?;
        let l2 = L2Stats {
            accesses: uint_field(l2_json, "accesses")?,
            loc_hits: uint_field(l2_json, "loc_hits")?,
            woc_hits: uint_field(l2_json, "woc_hits")?,
            hole_misses: uint_field(l2_json, "hole_misses")?,
            line_misses: uint_field(l2_json, "line_misses")?,
            compulsory_misses: uint_field(l2_json, "compulsory_misses")?,
            evictions: uint_field(l2_json, "evictions")?,
            writebacks: uint_field(l2_json, "writebacks")?,
            woc_installs: uint_field(l2_json, "woc_installs")?,
            distill_filtered: uint_field(l2_json, "distill_filtered")?,
            words_used_at_evict: decode_histogram(l2_json, "words_used_at_evict")?,
            recency_before_change: decode_histogram(l2_json, "recency_before_change")?,
        };
        let hierarchy = HierarchyStats {
            instructions: uint_field(hier_json, "instructions")?,
            l1d_accesses: uint_field(hier_json, "l1d_accesses")?,
            l1d_hits: uint_field(hier_json, "l1d_hits")?,
            l1d_sector_misses: uint_field(hier_json, "l1d_sector_misses")?,
            l1d_misses: uint_field(hier_json, "l1d_misses")?,
            l1i_accesses: uint_field(hier_json, "l1i_accesses")?,
            l1i_hits: uint_field(hier_json, "l1i_hits")?,
        };
        Ok(RunResult {
            benchmark: str_field(json, "benchmark")?.to_owned(),
            config: str_field(json, "config")?.to_owned(),
            mpki: float_bits_field(json, "mpki_bits")?,
            l2,
            hierarchy,
        })
    }
}

/// Identity of the matrix a journal belongs to. Resume refuses a journal
/// whose header disagrees — a checkpoint of a different seed, access
/// budget or matrix shape must never be spliced into a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Derived id of (seed, accesses, warmup, benchmarks, configs).
    pub matrix_id: u64,
    /// Total cell count of the matrix.
    pub cells: u64,
}

/// Seals `record` with its checksum field: the FNV-1a hash of the
/// record's canonical compact rendering without the checksum.
fn seal(record: Json) -> Result<Json, String> {
    let Json::Obj(mut fields) = record else {
        return Err("journal records must be objects".to_owned());
    };
    let unsealed = Json::Obj(fields.clone());
    fields.push((
        "checksum".to_owned(),
        Json::uint(fnv1a(unsealed.render().as_bytes())),
    ));
    Ok(Json::Obj(fields))
}

/// Verifies and strips a record's checksum field (which must be last,
/// where [`seal`] puts it).
fn unseal(record: Json) -> Result<Json, String> {
    let Json::Obj(mut fields) = record else {
        return Err("journal records must be objects".to_owned());
    };
    let Some(("checksum", &Json::Uint(stored))) = fields.last().map(|(k, v)| (k.as_str(), v))
    else {
        return Err("record has no trailing checksum field".to_owned());
    };
    fields.pop();
    let unsealed = Json::Obj(fields);
    let computed = fnv1a(unsealed.render().as_bytes());
    if computed != stored {
        return Err(format!(
            "checksum mismatch: stored {stored}, computed {computed}"
        ));
    }
    Ok(unsealed)
}

/// What [`Journal::resume`] recovered.
#[derive(Debug)]
pub struct Resumed<T> {
    /// The reopened journal, positioned for appending.
    pub journal: Journal,
    /// Valid completed cells, by cell index.
    pub completed: BTreeMap<usize, T>,
    /// Per-cell seeds as recorded (for repro reporting).
    pub seeds: BTreeMap<usize, u64>,
    /// Trailing bytes discarded as corrupt or truncated (0 for a clean
    /// journal).
    pub discarded_bytes: u64,
    /// Why the tail was discarded, when it was.
    pub discard_reason: Option<String>,
}

/// An append-only checkpoint journal (one JSON record per line).
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    header: JournalHeader,
}

impl Journal {
    /// Creates (truncating) a journal for `header` and writes the header
    /// line.
    ///
    /// # Errors
    ///
    /// Returns a message on any IO failure.
    pub fn create(path: &Path, header: JournalHeader) -> Result<Journal, String> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("journal {}: cannot create: {e}", path.display()))?;
        let sealed = seal(Json::obj([
            ("journal", Json::str(MAGIC)),
            ("version", Json::uint(VERSION)),
            ("matrix_id", Json::uint(header.matrix_id)),
            ("cells", Json::uint(header.cells)),
        ]))?;
        write_line(&mut file, &sealed, path)?;
        Ok(Journal {
            file,
            path: path.to_owned(),
            header,
        })
    }

    /// Opens an existing journal, validates the header against `header`,
    /// verifies every record's checksum, truncates any corrupt or
    /// incomplete tail, and returns the completed cells.
    ///
    /// # Errors
    ///
    /// Returns a message when the file cannot be read, the header is
    /// unreadable or names a different matrix, or a record decodes to an
    /// out-of-range cell. (A corrupt *tail* is not an error: it is
    /// discarded and reported in [`Resumed::discarded_bytes`].)
    pub fn resume<T: CellCodec>(path: &Path, header: JournalHeader) -> Result<Resumed<T>, String> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("journal {}: cannot open: {e}", path.display()))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("journal {}: cannot read: {e}", path.display()))?;

        // Header line: any defect here fails the resume outright — with
        // no trustworthy identity, no record can be trusted either.
        let header_line = text.lines().next().unwrap_or("");
        if text.as_bytes().get(header_line.len()) != Some(&b'\n') {
            return Err(format!(
                "journal {}: bad header: header line is not newline-terminated \
                 (interrupted while being created)",
                path.display()
            ));
        }
        let stored = Json::parse(header_line)
            .and_then(unseal)
            .map_err(|e| format!("journal {}: bad header: {e}", path.display()))?;
        if str_field(&stored, "journal")? != MAGIC {
            return Err(format!("journal {}: not a sweep journal", path.display()));
        }
        if uint_field(&stored, "version")? != VERSION {
            return Err(format!("journal {}: unsupported version", path.display()));
        }
        let stored_header = JournalHeader {
            matrix_id: uint_field(&stored, "matrix_id")?,
            cells: uint_field(&stored, "cells")?,
        };
        if stored_header != header {
            return Err(format!(
                "journal {}: matrix mismatch (journal {:#x}/{} cells, run {:#x}/{} cells); \
                 it checkpoints a different seed, budget or matrix shape",
                path.display(),
                stored_header.matrix_id,
                stored_header.cells,
                header.matrix_id,
                header.cells,
            ));
        }

        // Records: keep the longest valid prefix, drop the rest.
        let mut completed = BTreeMap::new();
        let mut seeds = BTreeMap::new();
        let mut valid_bytes = header_line.len() as u64 + 1; // header + newline
        let mut discard_reason = None;
        let mut offset = valid_bytes as usize;
        while offset < text.len() {
            let line = text
                .get(offset..)
                .unwrap_or("")
                .lines()
                .next()
                .unwrap_or("");
            let line_end = offset + line.len();
            let terminated = text.as_bytes().get(line_end) == Some(&b'\n');
            let parsed = if terminated {
                Json::parse(line).and_then(unseal)
            } else {
                // An unterminated final line is an interrupted append even
                // if its content happens to parse.
                Err("record line is not newline-terminated".to_owned())
            };
            let record = match parsed {
                Ok(r) => r,
                Err(e) => {
                    discard_reason = Some(e);
                    break;
                }
            };
            if uint_field(&record, "matrix_id")? != header.matrix_id {
                discard_reason = Some("record names a different matrix".to_owned());
                break;
            }
            let cell = uint_field(&record, "cell")?;
            if cell >= header.cells {
                return Err(format!(
                    "journal {}: cell {cell} out of range for a {}-cell matrix",
                    path.display(),
                    header.cells
                ));
            }
            let value = T::decode(field(&record, "result")?)
                .map_err(|e| format!("journal {}: cell {cell}: {e}", path.display()))?;
            seeds.insert(cell as usize, uint_field(&record, "seed")?);
            completed.insert(cell as usize, value);
            offset = line_end + 1;
            valid_bytes = offset as u64;
        }
        let discarded_bytes = text.len() as u64 - valid_bytes;
        if discarded_bytes > 0 {
            file.set_len(valid_bytes)
                .map_err(|e| format!("journal {}: cannot truncate tail: {e}", path.display()))?;
        }
        file.seek(std::io::SeekFrom::Start(valid_bytes))
            .map_err(|e| format!("journal {}: cannot seek: {e}", path.display()))?;
        Ok(Resumed {
            journal: Journal {
                file,
                path: path.to_owned(),
                header,
            },
            completed,
            seeds,
            discarded_bytes,
            discard_reason,
        })
    }

    /// Appends one completed cell and flushes, so a `SIGKILL` directly
    /// after the call cannot lose the record.
    ///
    /// # Errors
    ///
    /// Returns a message on any IO failure.
    pub fn append<T: CellCodec>(
        &mut self,
        cell: usize,
        seed: u64,
        result: &T,
    ) -> Result<(), String> {
        let sealed = seal(Json::obj([
            ("matrix_id", Json::uint(self.header.matrix_id)),
            ("cell", Json::uint(cell as u64)),
            ("seed", Json::uint(seed)),
            ("result", result.encode()),
        ]))?;
        write_line(&mut self.file, &sealed, &self.path)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Writes one compact record line and flushes.
fn write_line(file: &mut std::fs::File, record: &Json, path: &Path) -> Result<(), String> {
    let mut line = record.render();
    line.push('\n');
    file.write_all(line.as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| format!("journal {}: write failed: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_baseline, RunConfig};
    use ldis_workloads::spec2000;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ldis-journal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}.jsonl", std::process::id()))
    }

    fn sample_result() -> RunResult {
        let b = spec2000::by_name("art").expect("art exists");
        run_baseline(&b, &RunConfig::quick().with_accesses(20_000), 1 << 20)
    }

    const HDR: JournalHeader = JournalHeader {
        matrix_id: 0xfeed_beef_dead_cafe,
        cells: 81,
    };

    #[test]
    fn run_result_codec_round_trips_bit_for_bit() {
        let r = sample_result();
        let decoded = RunResult::decode(&r.encode()).expect("decode");
        assert_eq!(decoded, r);
        assert_eq!(decoded.mpki.to_bits(), r.mpki.to_bits());
        // And through the actual textual form, as the journal stores it.
        let reparsed = Json::parse(&r.encode().render()).expect("parse");
        assert_eq!(RunResult::decode(&reparsed).expect("decode"), r);
    }

    #[test]
    fn codec_names_missing_and_mistyped_fields() {
        let r = sample_result();
        let Json::Obj(fields) = r.encode() else {
            panic!("encode must produce an object")
        };
        let without_l2: Vec<_> = fields.iter().filter(|(k, _)| k != "l2").cloned().collect();
        let err = RunResult::decode(&Json::Obj(without_l2)).expect_err("must fail");
        assert!(err.contains("'l2'"), "{err}");
        let err = RunResult::decode(&Json::str("nope")).expect_err("must fail");
        assert!(err.contains("expected object"), "{err}");
    }

    #[test]
    fn create_append_resume_round_trips() {
        let path = tmp("roundtrip");
        let r = sample_result();
        {
            let mut j = Journal::create(&path, HDR).expect("create");
            j.append(7usize, 1234, &r).expect("append");
            j.append(3usize, 5678, &r).expect("append");
        }
        let resumed = Journal::resume::<RunResult>(&path, HDR).expect("resume");
        assert_eq!(resumed.discarded_bytes, 0);
        assert_eq!(resumed.discard_reason, None);
        assert_eq!(resumed.completed.len(), 2);
        assert_eq!(resumed.completed.get(&7), Some(&r));
        assert_eq!(resumed.seeds.get(&7), Some(&1234));
        assert_eq!(resumed.seeds.get(&3), Some(&5678));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_foreign_matrices() {
        let path = tmp("foreign");
        Journal::create(&path, HDR).expect("create");
        let other = JournalHeader {
            matrix_id: 1,
            cells: 81,
        };
        let err = Journal::resume::<RunResult>(&path, other).expect_err("must refuse");
        assert!(err.contains("matrix mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_checksum_byte_discards_the_tail() {
        let path = tmp("corrupt");
        let r = sample_result();
        {
            let mut j = Journal::create(&path, HDR).expect("create");
            j.append(0usize, 1, &r).expect("append");
            j.append(1usize, 2, &r).expect("append");
        }
        let clean = std::fs::read_to_string(&path).expect("read");
        // Flip one digit inside the *second* record's checksum field.
        let second_start = clean
            .match_indices('\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .expect("three lines");
        let tail = &clean[second_start..];
        let at = second_start
            + tail.rfind("\"checksum\": ").expect("checksum field")
            + "\"checksum\": ".len();
        let mut bytes = clean.clone().into_bytes();
        bytes[at] = if bytes[at] == b'9' { b'8' } else { b'9' };
        std::fs::write(&path, &bytes).expect("write corrupted");

        let resumed = Journal::resume::<RunResult>(&path, HDR).expect("resume");
        assert_eq!(
            resumed.completed.len(),
            1,
            "only the intact record survives"
        );
        assert!(resumed.completed.contains_key(&0));
        let reason = resumed.discard_reason.expect("tail was discarded");
        // Depending on the flipped digit the record either fails the
        // checksum compare or stops being a well-formed checksummed
        // record at all; both are detection.
        assert!(reason.contains("checksum"), "{reason}");
        assert!(resumed.discarded_bytes > 0);
        // The corrupt tail is gone from disk: appending now yields a
        // journal whose records are all valid again.
        let on_disk = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(on_disk.lines().count(), 2, "header + first record");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_detected_at_every_cut_point() {
        let path = tmp("truncated");
        let r = sample_result();
        {
            let mut j = Journal::create(&path, HDR).expect("create");
            j.append(0usize, 1, &r).expect("append");
            j.append(1usize, 2, &r).expect("append");
        }
        let clean = std::fs::read(&path).expect("read");
        let second_start = clean
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .expect("three lines");
        // Cut the file anywhere inside the second record (including just
        // missing the final newline): record 1 must survive, the stump
        // must be discarded and truncated away.
        for cut in [second_start + 1, second_start + 50, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).expect("write cut");
            let resumed = Journal::resume::<RunResult>(&path, HDR).expect("resume");
            assert_eq!(resumed.completed.len(), 1, "cut at {cut}");
            assert!(resumed.discard_reason.is_some(), "cut at {cut}");
            let len = std::fs::metadata(&path).expect("stat").len();
            assert_eq!(len, second_start as u64, "cut at {cut}: stump truncated");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_then_append_produces_a_clean_journal() {
        let path = tmp("resume-append");
        let r = sample_result();
        {
            let mut j = Journal::create(&path, HDR).expect("create");
            j.append(0usize, 1, &r).expect("append");
        }
        // Interrupted append: half a record.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"{\"matrix_id\": 1834");
        std::fs::write(&path, &bytes).expect("write stump");
        {
            let mut resumed = Journal::resume::<RunResult>(&path, HDR).expect("resume");
            assert_eq!(resumed.completed.len(), 1);
            resumed
                .journal
                .append(1usize, 2, &r)
                .expect("append after resume");
        }
        let resumed = Journal::resume::<RunResult>(&path, HDR).expect("second resume");
        assert_eq!(resumed.discarded_bytes, 0);
        assert_eq!(resumed.completed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_fails_the_resume() {
        let path = tmp("bad-header");
        Journal::create(&path, HDR).expect("create");
        let clean = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, clean.replacen(MAGIC, "ldis-sweeq", 1)).expect("write");
        let err = Journal::resume::<RunResult>(&path, HDR).expect_err("must fail");
        assert!(
            err.contains("bad header") || err.contains("checksum"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
