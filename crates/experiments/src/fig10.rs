//! Figure 10: compressibility of cache lines — all words vs. used words
//! only.

use crate::report::{fmt_f, Table};
use crate::{baseline_config, for_each_benchmark, RunConfig};
use ldis_cache::{BaselineL2, Hierarchy, SecondLevel};
use ldis_compress::{SizeCategory, ValueSizeModel};
use ldis_workloads::{memory_intensive, TraceLength};

/// Compressibility class fractions for one benchmark: `[1/8, 1/4, 1/2,
/// full]`, once over all words and once over used words only.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Class fractions compressing every word of each resident line.
    pub all_words: [f64; 4],
    /// Class fractions compressing only each line's used words (sizes
    /// still relative to the full 64 B line).
    pub used_words: [f64; 4],
}

impl Fig10Row {
    /// Fraction of lines compressible (anything better than full size).
    pub fn compressible_all(&self) -> f64 {
        let [.., full] = self.all_words;
        1.0 - full
    }

    /// Fraction compressible when only used words are stored.
    pub fn compressible_used(&self) -> f64 {
        let [.., full] = self.used_words;
        1.0 - full
    }
}

/// Runs the baseline per benchmark and classifies the resident lines at
/// the end of the run (the paper samples periodically; a settled snapshot
/// measures the same steady-state distribution).
pub fn data(cfg: &RunConfig) -> Vec<Fig10Row> {
    data_for(&memory_intensive(), cfg)
}

/// The Figure 10 analysis over an explicit benchmark subset.
pub fn data_for(benches: &[ldis_workloads::Benchmark], cfg: &RunConfig) -> Vec<Fig10Row> {
    for_each_benchmark(benches, |b| {
        let mut workload = (b.make)(cfg.seed);
        let l2 = BaselineL2::new(baseline_config(1 << 20));
        let mut hier = Hierarchy::hpca2007(l2);
        workload.drive(&mut hier, TraceLength::accesses(cfg.accesses));

        let model = ValueSizeModel::new(workload.values(), hier.l2().geometry(), cfg.seed);
        let mut all = [0u64; 4];
        let mut used = [0u64; 4];
        let mut lines = 0u64;
        for (line, entry) in hier.l2().cache().iter_lines() {
            if entry.is_instr || entry.footprint.is_empty() {
                continue;
            }
            lines += 1;
            if let Some(slot) = all.get_mut(model.category(line, None).index()) {
                *slot += 1;
            }
            // Used-words size, still relative to the full line.
            let bytes = model.compressed_bytes(line, Some(entry.footprint));
            let cat = SizeCategory::of(bytes, hier.l2().geometry().line_bytes());
            if let Some(slot) = used.get_mut(cat.index()) {
                *slot += 1;
            }
        }
        let frac = |c: [u64; 4]| {
            let mut f = [0.0; 4];
            if lines > 0 {
                for (slot, count) in f.iter_mut().zip(c) {
                    *slot = count as f64 / lines as f64;
                }
            }
            f
        };
        Fig10Row {
            benchmark: b.name.to_owned(),
            all_words: frac(all),
            used_words: frac(used),
        }
    })
}

/// Renders the Figure 10 report.
pub fn report(rows: &[Fig10Row]) -> String {
    let mut t = Table::new(
        "Figure 10: compressibility classes (fractions) — (a) all words (b) used words only",
        &[
            "bench", "a:1/8", "a:1/4", "a:1/2", "a:full", "b:1/8", "b:1/4", "b:1/2", "b:full",
        ],
    );
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        for v in r.all_words.iter().chain(r.used_words.iter()) {
            cells.push(fmt_f(*v, 2));
        }
        t.row(cells);
    }
    t.note("paper: with all words most benchmarks are <50% compressible; with used words only, a majority of lines compress");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    fn row_for(name: &str) -> Fig10Row {
        let b = spec2000::by_name(name).unwrap();
        let cfg = RunConfig::quick();
        data_for(&[b], &cfg).remove(0)
    }

    #[test]
    fn used_words_compress_better_than_all_words() {
        let r = row_for("mcf");
        assert!(
            r.compressible_used() >= r.compressible_all(),
            "used {} < all {}",
            r.compressible_used(),
            r.compressible_all()
        );
        // mcf's sparse, pointer-heavy lines should land mostly in 1/4-1/8.
        assert!(
            r.used_words[0] + r.used_words[1] > 0.5,
            "mcf used-word classes: {:?}",
            r.used_words
        );
    }

    #[test]
    fn float_heavy_benchmarks_resist_whole_line_compression() {
        let r = row_for("swim");
        assert!(
            r.compressible_all() < 0.5,
            "swim should be mostly incompressible over all words, got {}",
            r.compressible_all()
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = row_for("twolf");
        let sa: f64 = r.all_words.iter().sum();
        let su: f64 = r.used_words.iter().sum();
        assert!((sa - 1.0).abs() < 1e-9 && (su - 1.0).abs() < 1e-9);
        assert!(report(&[r]).contains("b:1/8"));
    }
}
