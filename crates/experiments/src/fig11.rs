//! Figure 11: LDIS vs. compression vs. footprint-aware compression.

use crate::report::{fmt_f, fmt_pct, Table};
use crate::{for_each_benchmark, run, run_baseline, RunConfig};
use ldis_compress::{fac_cache, CmprCache, CmprConfig, ValueSizeModel};
use ldis_distill::{DistillCache, DistillConfig};
use ldis_mem::stats::percent_reduction;
use ldis_workloads::memory_intensive;

/// MPKI reductions over the baseline for the four Figure 11 organizations.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline MPKI.
    pub base: f64,
    /// LDIS with 2 WOC ways ("3xTags") reduction (%).
    pub ldis_3x: f64,
    /// LDIS with 3 WOC ways ("4xTags") reduction (%).
    pub ldis_4x: f64,
    /// Compressed traditional cache with 4× tags reduction (%).
    pub cmpr_4x: f64,
    /// Footprint-aware compression with 3 WOC ways reduction (%).
    pub fac_4x: f64,
}

/// Runs the Figure 11 matrix.
pub fn data(cfg: &RunConfig) -> Vec<Fig11Row> {
    let benches = memory_intensive();
    for_each_benchmark(&benches, |b| {
        let values = (b.make)(cfg.seed).values();
        let geom = ldis_mem::LineGeometry::default();
        let model = ValueSizeModel::new(values, geom, cfg.seed);

        let base = run_baseline(b, cfg, 1 << 20);
        let ldis_3x = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        });
        let ldis_4x = run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default().with_woc_ways(3))
        });
        let cmpr = run(b, cfg, || CmprCache::new(CmprConfig::cmpr_4x_tags(), model));
        let fac = run(b, cfg, || {
            fac_cache(DistillConfig::hpca2007_default().with_woc_ways(3), model)
        });
        let red = |m: f64| percent_reduction(base.mpki, m);
        Fig11Row {
            benchmark: b.name.to_owned(),
            base: base.mpki,
            ldis_3x: red(ldis_3x.mpki),
            ldis_4x: red(ldis_4x.mpki),
            cmpr_4x: red(cmpr.mpki),
            fac_4x: red(fac.mpki),
        }
    })
}

/// Mean-MPKI reductions per configuration (the paper's summary metric).
pub fn mean_reductions(rows: &[Fig11Row]) -> (f64, f64, f64, f64) {
    let n = rows.len() as f64;
    let base: f64 = rows.iter().map(|r| r.base).sum::<f64>() / n;
    let mean_of = |f: fn(&Fig11Row) -> f64| {
        let reduced: f64 = rows
            .iter()
            .map(|r| r.base * (1.0 - f(r) / 100.0))
            .sum::<f64>()
            / n;
        percent_reduction(base, reduced)
    };
    (
        mean_of(|r| r.ldis_3x),
        mean_of(|r| r.ldis_4x),
        mean_of(|r| r.cmpr_4x),
        mean_of(|r| r.fac_4x),
    )
}

/// Renders the Figure 11 report.
pub fn report(rows: &[Fig11Row]) -> String {
    let mut t = Table::new(
        "Figure 11: % MPKI reduction — LDIS, compression (CMPR) and footprint-aware compression (FAC)",
        &[
            "bench",
            "base-mpki",
            "LDIS-3xTags",
            "LDIS-4xTags",
            "CMPR-4xTags",
            "FAC-4xTags",
        ],
    );
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            fmt_f(r.base, 2),
            fmt_pct(r.ldis_3x),
            fmt_pct(r.ldis_4x),
            fmt_pct(r.cmpr_4x),
            fmt_pct(r.fac_4x),
        ]);
    }
    let (l3, l4, c4, f4) = mean_reductions(rows);
    t.row(vec![
        "avg".into(),
        String::new(),
        fmt_pct(l3),
        fmt_pct(l4),
        fmt_pct(c4),
        fmt_pct(f4),
    ]);
    t.note("paper: FAC ≈ 50% average reduction, beating both LDIS and CMPR alone");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_workloads::spec2000;

    #[test]
    fn fac_beats_plain_ldis_on_compressible_sparse_data() {
        let b = spec2000::by_name("health").unwrap();
        let cfg = RunConfig::quick().with_accesses(500_000);
        let values = (b.make)(cfg.seed).values();
        let model = ValueSizeModel::new(values, ldis_mem::LineGeometry::default(), cfg.seed);
        let base = run_baseline(&b, &cfg, 1 << 20);
        let ldis = run(&b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default().with_woc_ways(3))
        });
        let fac = run(&b, &cfg, || {
            fac_cache(DistillConfig::hpca2007_default().with_woc_ways(3), model)
        });
        assert!(
            fac.mpki <= ldis.mpki * 1.02,
            "FAC {} should be at least as good as LDIS {} (base {})",
            fac.mpki,
            ldis.mpki,
            base.mpki
        );
    }

    #[test]
    fn mean_reduction_math() {
        let rows = vec![
            Fig11Row {
                benchmark: "a".into(),
                base: 10.0,
                ldis_3x: 50.0,
                ldis_4x: 50.0,
                cmpr_4x: 0.0,
                fac_4x: 50.0,
            },
            Fig11Row {
                benchmark: "b".into(),
                base: 30.0,
                ldis_3x: 0.0,
                ldis_4x: 0.0,
                cmpr_4x: 0.0,
                fac_4x: 50.0,
            },
        ];
        let (l3, _, c4, f4) = mean_reductions(&rows);
        assert!((l3 - 12.5).abs() < 1e-9, "{l3}");
        assert_eq!(c4, 0.0);
        assert!((f4 - 50.0).abs() < 1e-9);
        assert!(report(&rows).contains("FAC-4xTags"));
    }
}
