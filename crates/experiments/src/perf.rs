//! Performance-trajectory harness: wall-clock throughput of the quick
//! sweep matrix.
//!
//! `ldis-experiments bench --quick --out BENCH_sweep.json` times the full
//! 81-cell quick matrix on the crash-safe executor at 1 and 4 worker
//! threads and writes the committed trajectory artifact. Unlike golden
//! snapshots the numbers are host-dependent by nature — the artifact
//! tracks the *trend* across PRs (simulated accesses per second,
//! nanoseconds per access, parallel speedup), not exact bytes, so it is
//! exempt from byte-stability checks.

use crate::exec::{run_cells, ExecPolicy};
use crate::report::{fmt_f, Json, Table};
use crate::{sweep, RunConfig};
use std::collections::BTreeMap;
use std::time::Instant;

/// One timed configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the full matrix.
    pub wall_s: f64,
    /// Simulated memory accesses per wall-clock second.
    pub accesses_per_s: f64,
    /// Wall-clock nanoseconds per simulated access.
    pub ns_per_access: f64,
}

/// Times the full sweep matrix once per entry of `thread_counts`.
pub fn measure(cfg: &RunConfig, thread_counts: &[usize]) -> Vec<BenchPoint> {
    let total_accesses = cfg.accesses * sweep::cells().len() as u64;
    thread_counts
        .iter()
        .map(|&threads| {
            let run_cfg = *cfg;
            let policy = ExecPolicy::with_threads(threads);
            let start = Instant::now();
            let report = run_cells(
                sweep::cells(),
                move |_cell, spec| sweep::run_cell(spec, &run_cfg),
                &policy,
                BTreeMap::new(),
                |_, _| {},
            );
            let wall_s = start.elapsed().as_secs_f64().max(1e-9);
            debug_assert!(report.all_ok());
            BenchPoint {
                threads,
                wall_s,
                accesses_per_s: total_accesses as f64 / wall_s,
                ns_per_access: wall_s * 1e9 / total_accesses as f64,
            }
        })
        .collect()
}

/// The committed `BENCH_sweep.json` artifact.
pub fn snapshot(cfg: &RunConfig, points: &[BenchPoint]) -> Json {
    Json::obj([
        ("bench", Json::str("sweep")),
        (
            "workload",
            Json::obj([
                ("cells", Json::uint(sweep::cells().len() as u64)),
                ("accesses_per_cell", Json::uint(cfg.accesses)),
                ("seed", Json::uint(cfg.seed)),
            ]),
        ),
        (
            "results",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("threads", Json::uint(p.threads as u64)),
                    ("wall_s", Json::num(round3(p.wall_s))),
                    ("accesses_per_s", Json::num(round3(p.accesses_per_s))),
                    ("ns_per_access", Json::num(round3(p.ns_per_access))),
                ])
            })),
        ),
        (
            "regenerate",
            Json::str(
                "cargo build --release --workspace && \
                 ./target/release/ldis-experiments bench --quick --out BENCH_sweep.json",
            ),
        ),
    ])
}

/// Rounds to 3 decimals so the artifact diffs stay readable.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Renders the human-readable bench table.
pub fn report(cfg: &RunConfig, points: &[BenchPoint]) -> String {
    let mut t = Table::new(
        "Sweep throughput (crash-safe executor, full matrix)",
        &["threads", "wall s", "Maccess/s", "ns/access"],
    );
    for p in points {
        t.row(vec![
            p.threads.to_string(),
            fmt_f(p.wall_s, 3),
            fmt_f(p.accesses_per_s / 1e6, 2),
            fmt_f(p.ns_per_access, 1),
        ]);
    }
    if let (Some(serial), Some(fastest)) = (points.first(), points.last()) {
        if fastest.threads > serial.threads {
            t.note(format!(
                "speedup at {} threads: {}x over 1 thread",
                fastest.threads,
                fmt_f(serial.wall_s / fastest.wall_s.max(1e-9), 2)
            ));
        }
    }
    t.note(format!(
        "{} cells x {} accesses; regenerate BENCH_sweep.json with `bench --quick --out`",
        sweep::cells().len(),
        cfg.accesses
    ));
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_snapshot_shape_is_stable() {
        let cfg = RunConfig::quick();
        let points = vec![
            BenchPoint {
                threads: 1,
                wall_s: 2.0,
                accesses_per_s: 6_075_000.0,
                ns_per_access: 164.6,
            },
            BenchPoint {
                threads: 4,
                wall_s: 0.55,
                accesses_per_s: 22_090_909.0,
                ns_per_access: 45.3,
            },
        ];
        let json = snapshot(&cfg, &points);
        let text = json.render();
        assert!(text.contains("\"bench\": \"sweep\""), "{text}");
        assert!(text.contains("\"threads\": 1"), "{text}");
        assert!(text.contains("\"regenerate\""), "{text}");
        let rendered = report(&cfg, &points);
        assert!(rendered.contains("speedup"), "{rendered}");
    }

    #[test]
    fn measure_times_a_tiny_matrix() {
        // One real (but minuscule) measurement keeps the timing path
        // honest without slowing the suite.
        let cfg = RunConfig::quick().with_accesses(500);
        let points = measure(&cfg, &[1]);
        assert_eq!(points.len(), 1);
        let p = points.first().expect("one point");
        assert!(p.wall_s > 0.0);
        assert!(p.accesses_per_s > 0.0);
        assert!(p.ns_per_access > 0.0);
    }
}
