//! Performance-trajectory harness: wall-clock throughput of the quick
//! sweep matrix.
//!
//! `ldis-experiments bench --quick --out BENCH_sweep.json` times the full
//! 81-cell quick matrix on the crash-safe executor at 1 and 4 worker
//! threads and writes the committed trajectory artifact. Unlike golden
//! snapshots the numbers are host-dependent by nature — the artifact
//! tracks the *trend* across PRs (simulated accesses per second,
//! nanoseconds per access, parallel speedup), not exact bytes, so it is
//! exempt from byte-stability checks.

use crate::exec::{run_cells, ExecPolicy};
use crate::report::{fmt_f, Json, Table};
use crate::{mrc, run_capacity_sweep, run_sampled_capacity_sweep, sweep, RunConfig};
use ldis_mrc::ShardsConfig;
use ldis_workloads::Workload;
use std::collections::BTreeMap;
use std::time::Instant;

/// One timed configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the full matrix.
    pub wall_s: f64,
    /// Simulated memory accesses per wall-clock second.
    pub accesses_per_s: f64,
    /// Wall-clock nanoseconds per simulated access.
    pub ns_per_access: f64,
}

/// Times the full sweep matrix once per entry of `thread_counts`.
pub fn measure(cfg: &RunConfig, thread_counts: &[usize]) -> Vec<BenchPoint> {
    let total_accesses = cfg.accesses * sweep::cells().len() as u64;
    thread_counts
        .iter()
        .map(|&threads| {
            let run_cfg = *cfg;
            let policy = ExecPolicy::with_threads(threads);
            let start = Instant::now();
            let report = run_cells(
                sweep::cells(),
                move |_cell, spec| sweep::run_cell(spec, &run_cfg),
                &policy,
                BTreeMap::new(),
                |_, _| {},
            );
            let wall_s = start.elapsed().as_secs_f64().max(1e-9);
            debug_assert!(report.all_ok());
            BenchPoint {
                threads,
                wall_s,
                accesses_per_s: total_accesses as f64 / wall_s,
                ns_per_access: wall_s * 1e9 / total_accesses as f64,
            }
        })
        .collect()
}

/// Where the single-thread wall time of the sweep goes: trace generation
/// versus cache simulation, in nanoseconds per simulated access.
///
/// Generation is measured directly — every cell's workload is regenerated
/// serially into a discarded block buffer, exactly the accesses the sweep
/// simulates — and simulation is the single-thread total minus that.
#[derive(Clone, Copy, Debug)]
pub struct PhaseBreakdown {
    /// Wall-clock seconds spent generating every cell's trace once.
    pub generation_wall_s: f64,
    /// Generation cost per simulated access.
    pub generation_ns_per_access: f64,
    /// Simulation (hierarchy + L2 model) cost per simulated access.
    pub simulation_ns_per_access: f64,
}

/// Times pure trace generation for the full sweep matrix and splits the
/// single-thread total of `serial` into generation and simulation shares.
pub fn measure_phases(cfg: &RunConfig, serial: &BenchPoint) -> PhaseBreakdown {
    let cells = sweep::cells();
    let total_accesses = cfg.accesses * cells.len() as u64;
    let mut buf = Vec::with_capacity(Workload::DRIVE_BLOCK);
    let start = Instant::now();
    for cell in &cells {
        let mut workload = (cell.benchmark.make)(cell.seed(cfg));
        let mut remaining = cfg.warmup + cfg.accesses;
        while remaining > 0 {
            let take = remaining.min(Workload::DRIVE_BLOCK as u64) as usize;
            workload.fill_block(&mut buf, take);
            std::hint::black_box(&buf);
            remaining -= take as u64;
        }
    }
    let generation_wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let generation_ns_per_access = generation_wall_s * 1e9 / total_accesses as f64;
    PhaseBreakdown {
        generation_wall_s,
        generation_ns_per_access,
        simulation_ns_per_access: (serial.ns_per_access - generation_ns_per_access).max(0.0),
    }
}

/// The maximum tolerated single-thread ns/access growth over the
/// committed artifact before [`check_regression`] fails: 10%.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Compares a fresh single-thread measurement against the committed
/// `BENCH_sweep.json` text. Returns a human-readable verdict, or an error
/// describing the regression (fresh ns/access more than
/// [`REGRESSION_TOLERANCE`] above the committed value) or a malformed
/// artifact.
pub fn check_regression(committed: &str, fresh: &BenchPoint) -> Result<String, String> {
    let json = Json::parse(committed).map_err(|e| format!("unparseable artifact: {e}"))?;
    let committed_ns = committed_serial_ns(&json)
        .ok_or_else(|| "artifact has no 1-thread ns_per_access entry".to_owned())?;
    let limit = committed_ns * (1.0 + REGRESSION_TOLERANCE);
    let verdict = format!(
        "bench check: fresh {:.1} ns/access vs committed {:.1} (limit {:.1})",
        fresh.ns_per_access, committed_ns, limit
    );
    if fresh.ns_per_access > limit {
        Err(format!("{verdict} — REGRESSION"))
    } else {
        Ok(verdict)
    }
}

/// [`check_regression`], but a failing first measurement is retried up
/// to `retries` more times via `remeasure`, keeping the fastest point.
/// Shared-runner wall-clock varies window-to-window by more than the
/// tolerance; only the best-of-N floor tracks what the code costs, so a
/// regression verdict requires every attempt to exceed the limit.
pub fn check_regression_retrying(
    committed: &str,
    first: &BenchPoint,
    retries: usize,
    mut remeasure: impl FnMut() -> Option<BenchPoint>,
) -> Result<String, String> {
    let mut best = *first;
    let mut verdict = check_regression(committed, &best);
    for _ in 0..retries {
        if verdict.is_ok() {
            break;
        }
        let Some(p) = remeasure() else { break };
        if p.ns_per_access < best.ns_per_access {
            best = p;
        }
        verdict = check_regression(committed, &best);
    }
    verdict
}

/// Extracts the committed single-thread `ns_per_access` from a parsed
/// `BENCH_sweep.json`.
fn committed_serial_ns(json: &Json) -> Option<f64> {
    let Json::Obj(fields) = json else { return None };
    let results = fields.iter().find(|(k, _)| k == "results")?;
    let Json::Arr(points) = &results.1 else {
        return None;
    };
    points.iter().find_map(|p| {
        let Json::Obj(entry) = p else { return None };
        let threads = entry.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("threads", Json::Uint(t)) => Some(*t),
            _ => None,
        })?;
        if threads != 1 {
            return None;
        }
        entry.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("ns_per_access", Json::Num(x)) => Some(*x),
            ("ns_per_access", Json::Uint(x)) => Some(*x as f64),
            _ => None,
        })
    })
}

/// The committed `BENCH_sweep.json` artifact.
pub fn snapshot(cfg: &RunConfig, points: &[BenchPoint], phases: Option<&PhaseBreakdown>) -> Json {
    Json::obj([
        ("bench", Json::str("sweep")),
        (
            "workload",
            Json::obj([
                ("cells", Json::uint(sweep::cells().len() as u64)),
                ("accesses_per_cell", Json::uint(cfg.accesses)),
                ("seed", Json::uint(cfg.seed)),
            ]),
        ),
        (
            "results",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("threads", Json::uint(p.threads as u64)),
                    ("wall_s", Json::num(round3(p.wall_s))),
                    ("accesses_per_s", Json::num(round3(p.accesses_per_s))),
                    ("ns_per_access", Json::num(round3(p.ns_per_access))),
                ])
            })),
        ),
        (
            "phases",
            match phases {
                Some(ph) => Json::obj([
                    ("threads", Json::uint(1)),
                    (
                        "generation_ns_per_access",
                        Json::num(round3(ph.generation_ns_per_access)),
                    ),
                    (
                        "simulation_ns_per_access",
                        Json::num(round3(ph.simulation_ns_per_access)),
                    ),
                ]),
                None => Json::Null,
            },
        ),
        (
            "regenerate",
            Json::str(
                "cargo build --release --workspace && \
                 ./target/release/ldis-experiments bench --quick --out BENCH_sweep.json",
            ),
        ),
    ])
}

/// Rounds to 3 decimals so the artifact diffs stay readable.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One timed MRC pass over the full benchmark population: the exact
/// Mattson engine or the sampled SHARDS engine at one rate.
#[derive(Clone, Debug)]
pub struct MrcBenchPoint {
    /// `"exact"` or `"shards@<rate>"`.
    pub label: String,
    /// The sampling rate (`None` for the exact pass).
    pub rate: Option<f64>,
    /// Wall-clock seconds for all benchmarks, serially.
    pub wall_s: f64,
    /// Simulated memory accesses per wall-clock second.
    pub accesses_per_s: f64,
    /// Maximum sample-set size across benchmarks (`None` for the exact
    /// pass, whose state is the full per-set stacks instead).
    pub peak_samples: Option<u64>,
}

/// Times one exact capacity sweep over every benchmark, then one sampled
/// sweep per entry of `rates` — all serially on the calling thread, so
/// the exact:sampled ratios are not confounded by pool scheduling. The
/// committed artifact is `BENCH_mrc.json`.
pub fn measure_mrc(cfg: &RunConfig, rates: &[f64]) -> Vec<MrcBenchPoint> {
    let benches = mrc::all_benchmarks();
    let total_accesses = cfg.accesses * benches.len() as u64;
    let mut points = Vec::new();
    let start = Instant::now();
    for b in &benches {
        std::hint::black_box(run_capacity_sweep(b, cfg, &mrc::MRC_SIZES));
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    points.push(MrcBenchPoint {
        label: "exact".to_owned(),
        rate: None,
        wall_s,
        accesses_per_s: total_accesses as f64 / wall_s,
        peak_samples: None,
    });
    for &rate in rates {
        let shards = ShardsConfig::at_rate(rate);
        let start = Instant::now();
        let mut peak = 0u64;
        for b in &benches {
            let s = run_sampled_capacity_sweep(b, cfg, &mrc::MRC_SIZES, &shards);
            peak = peak.max(s.peak_samples as u64);
        }
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        points.push(MrcBenchPoint {
            label: format!("shards@{rate}"),
            rate: Some(rate),
            wall_s,
            accesses_per_s: total_accesses as f64 / wall_s,
            peak_samples: Some(peak),
        });
    }
    points
}

/// The committed `BENCH_mrc.json` artifact: exact vs sampled pass
/// wall-time and peak sample-set size per rate.
pub fn mrc_snapshot(cfg: &RunConfig, points: &[MrcBenchPoint]) -> Json {
    Json::obj([
        ("bench", Json::str("mrc")),
        (
            "workload",
            Json::obj([
                ("benchmarks", Json::uint(mrc::all_benchmarks().len() as u64)),
                ("sizes", Json::uint(mrc::MRC_SIZES.len() as u64)),
                ("accesses_per_benchmark", Json::uint(cfg.accesses)),
                ("seed", Json::uint(cfg.seed)),
            ]),
        ),
        (
            "results",
            Json::arr(points.iter().map(|p| {
                let mut fields = vec![
                    ("pass", Json::str(&p.label)),
                    ("wall_s", Json::num(round3(p.wall_s))),
                    ("accesses_per_s", Json::num(round3(p.accesses_per_s))),
                ];
                if let Some(rate) = p.rate {
                    fields.push(("rate", Json::num(rate)));
                }
                if let Some(peak) = p.peak_samples {
                    fields.push(("peak_samples", Json::uint(peak)));
                }
                Json::obj(fields)
            })),
        ),
        (
            "regenerate",
            Json::str(
                "cargo build --release --workspace && \
                 ./target/release/ldis-experiments bench-mrc --quick --out BENCH_mrc.json",
            ),
        ),
    ])
}

/// Renders the human-readable MRC bench table.
pub fn mrc_report(cfg: &RunConfig, points: &[MrcBenchPoint]) -> String {
    let mut t = Table::new(
        "MRC pass throughput (exact Mattson vs sampled SHARDS)",
        &["pass", "wall s", "Maccess/s", "peak samples", "speedup"],
    );
    let exact_wall = points
        .iter()
        .find(|p| p.rate.is_none())
        .map_or(f64::NAN, |p| p.wall_s);
    for p in points {
        t.row(vec![
            p.label.clone(),
            fmt_f(p.wall_s, 3),
            fmt_f(p.accesses_per_s / 1e6, 2),
            p.peak_samples
                .map_or_else(|| "-".to_owned(), |s| s.to_string()),
            fmt_f(exact_wall / p.wall_s.max(1e-9), 2),
        ]);
    }
    t.note(format!(
        "{} benchmarks x {} accesses, serial; regenerate BENCH_mrc.json with \
         `bench-mrc --quick --out`",
        mrc::all_benchmarks().len(),
        cfg.accesses
    ));
    t.render()
}

/// Renders the human-readable bench table.
pub fn report(cfg: &RunConfig, points: &[BenchPoint]) -> String {
    let mut t = Table::new(
        "Sweep throughput (crash-safe executor, full matrix)",
        &["threads", "wall s", "Maccess/s", "ns/access"],
    );
    for p in points {
        t.row(vec![
            p.threads.to_string(),
            fmt_f(p.wall_s, 3),
            fmt_f(p.accesses_per_s / 1e6, 2),
            fmt_f(p.ns_per_access, 1),
        ]);
    }
    if let (Some(serial), Some(fastest)) = (points.first(), points.last()) {
        if fastest.threads > serial.threads {
            t.note(format!(
                "speedup at {} threads: {}x over 1 thread",
                fastest.threads,
                fmt_f(serial.wall_s / fastest.wall_s.max(1e-9), 2)
            ));
        }
    }
    t.note(format!(
        "{} cells x {} accesses; regenerate BENCH_sweep.json with `bench --quick --out`",
        sweep::cells().len(),
        cfg.accesses
    ));
    t.render()
}

/// Renders the single-thread phase split as a one-line note.
pub fn phase_report(ph: &PhaseBreakdown) -> String {
    format!(
        "single-thread phase split: generation {} ns/access, simulation {} ns/access",
        fmt_f(ph.generation_ns_per_access, 1),
        fmt_f(ph.simulation_ns_per_access, 1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_snapshot_shape_is_stable() {
        let cfg = RunConfig::quick();
        let points = vec![
            BenchPoint {
                threads: 1,
                wall_s: 2.0,
                accesses_per_s: 6_075_000.0,
                ns_per_access: 164.6,
            },
            BenchPoint {
                threads: 4,
                wall_s: 0.55,
                accesses_per_s: 22_090_909.0,
                ns_per_access: 45.3,
            },
        ];
        let phases = PhaseBreakdown {
            generation_wall_s: 0.8,
            generation_ns_per_access: 65.8,
            simulation_ns_per_access: 98.8,
        };
        let json = snapshot(&cfg, &points, Some(&phases));
        let text = json.render();
        assert!(text.contains("\"bench\": \"sweep\""), "{text}");
        assert!(text.contains("\"threads\": 1"), "{text}");
        assert!(text.contains("\"regenerate\""), "{text}");
        assert!(
            text.contains("\"generation_ns_per_access\": 65.8"),
            "{text}"
        );
        assert!(
            text.contains("\"simulation_ns_per_access\": 98.8"),
            "{text}"
        );
        let rendered = report(&cfg, &points);
        assert!(rendered.contains("speedup"), "{rendered}");
        assert!(phase_report(&phases).contains("generation 65.8"));
    }

    #[test]
    fn regression_check_reads_the_committed_artifact() {
        let cfg = RunConfig::quick();
        let committed = vec![BenchPoint {
            threads: 1,
            wall_s: 2.0,
            accesses_per_s: 10_000_000.0,
            ns_per_access: 100.0,
        }];
        let artifact = snapshot(&cfg, &committed, None).render_pretty();
        let fresh_ok = BenchPoint {
            ns_per_access: 109.0,
            ..committed[0]
        };
        let fresh_bad = BenchPoint {
            ns_per_access: 111.0,
            ..committed[0]
        };
        assert!(check_regression(&artifact, &fresh_ok).is_ok());
        let err = check_regression(&artifact, &fresh_bad).expect_err(">10% must fail");
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(check_regression("not json", &fresh_ok).is_err());
        assert!(check_regression("{\"results\": []}", &fresh_ok).is_err());
    }

    #[test]
    fn regression_retry_keeps_the_fastest_window() {
        let cfg = RunConfig::quick();
        let committed = vec![BenchPoint {
            threads: 1,
            wall_s: 2.0,
            accesses_per_s: 10_000_000.0,
            ns_per_access: 100.0,
        }];
        let artifact = snapshot(&cfg, &committed, None).render_pretty();
        let slow = BenchPoint {
            ns_per_access: 140.0,
            ..committed[0]
        };
        // A fast retry window rescues a slow first measurement.
        let mut windows = vec![105.0, 150.0].into_iter();
        let verdict = check_regression_retrying(&artifact, &slow, 3, || {
            windows.next().map(|ns| BenchPoint {
                ns_per_access: ns,
                ..slow
            })
        });
        assert!(verdict.is_ok(), "{verdict:?}");
        // All-slow windows still fail, and a passing first point never
        // triggers a re-measure.
        let all_slow = check_regression_retrying(&artifact, &slow, 2, || Some(slow));
        assert!(all_slow
            .expect_err("every window slow")
            .contains("REGRESSION"));
        let fast = BenchPoint {
            ns_per_access: 95.0,
            ..committed[0]
        };
        let no_retry = check_regression_retrying(&artifact, &fast, 3, || {
            panic!("must not re-measure after a pass")
        });
        assert!(no_retry.is_ok());
    }

    #[test]
    fn phase_measurement_splits_the_serial_total() {
        let cfg = RunConfig::quick().with_accesses(200);
        let serial = BenchPoint {
            threads: 1,
            wall_s: 1.0,
            accesses_per_s: 16_200.0,
            ns_per_access: 61_728.0,
        };
        let ph = measure_phases(&cfg, &serial);
        assert!(ph.generation_wall_s > 0.0);
        assert!(ph.generation_ns_per_access > 0.0);
        assert!(
            (ph.generation_ns_per_access + ph.simulation_ns_per_access - serial.ns_per_access)
                .abs()
                < 1e-6
                || ph.simulation_ns_per_access == 0.0
        );
    }

    #[test]
    fn measure_times_a_tiny_matrix() {
        // One real (but minuscule) measurement keeps the timing path
        // honest without slowing the suite.
        let cfg = RunConfig::quick().with_accesses(500);
        let points = measure(&cfg, &[1]);
        assert_eq!(points.len(), 1);
        let p = points.first().expect("one point");
        assert!(p.wall_s > 0.0);
        assert!(p.accesses_per_s > 0.0);
        assert!(p.ns_per_access > 0.0);
    }
}
