//! Golden-snapshot regression harness.
//!
//! Committed JSON snapshots under `tests/golden/` (repository root) pin
//! the quick-config results of the wired experiments — `motivation`,
//! `table3`, `linesize` and `resilience` — so any change to the simulator,
//! the workload models or the sweep engine that moves a number fails the
//! test suite with a line-level diff instead of silently shifting the
//! paper reproduction.
//!
//! Workflow:
//!
//! * `cargo test` compares freshly computed snapshots against the
//!   committed files and fails on any byte difference;
//! * `UPDATE_GOLDEN=1 cargo test` regenerates the files in place; commit
//!   the diff together with the change that motivated it.
//!
//! Snapshots are rendered with the canonical serializer
//! ([`Json::render_pretty`]), which is byte-stable: the same results
//! always produce the same file, so regeneration without a real change is
//! a no-op and `git diff --exit-code tests/golden` can gate CI.

use crate::report::Json;
use crate::RunConfig;
use std::fs;
use std::path::PathBuf;

/// The canonical configuration every golden snapshot is computed with:
/// [`RunConfig::quick`]. The criterion benches in `crates/bench` run the
/// same configuration so benchmark numbers and snapshots describe the
/// same work.
pub fn golden_config() -> RunConfig {
    RunConfig::quick()
}

/// The snapshot directory: `LDIS_GOLDEN_DIR` if set (tests use a
/// temporary directory to exercise the update path), else `tests/golden/`
/// at the repository root.
pub fn dir() -> PathBuf {
    match std::env::var_os("LDIS_GOLDEN_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden"),
    }
}

/// Whether `UPDATE_GOLDEN=1` is in effect.
pub fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// What [`verify`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The computed snapshot matched the committed file byte for byte.
    Matched,
    /// `UPDATE_GOLDEN=1`: the file was (re)written.
    Updated,
}

/// Compares the rendered `snapshot` against `tests/golden/<name>.json`,
/// or rewrites the file when `UPDATE_GOLDEN=1`.
///
/// # Errors
///
/// Returns a human-readable message when the file is missing, unreadable,
/// unwritable, or differs from the computed snapshot. The mismatch
/// message names the first differing line and the regeneration command.
pub fn verify(name: &str, snapshot: &Json) -> Result<GoldenStatus, String> {
    let path = dir().join(format!("{name}.json"));
    let rendered = snapshot.render_pretty();
    if update_requested() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("golden '{name}': cannot create {}: {e}", parent.display()))?;
        }
        fs::write(&path, &rendered)
            .map_err(|e| format!("golden '{name}': cannot write {}: {e}", path.display()))?;
        return Ok(GoldenStatus::Updated);
    }
    let committed = fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden '{name}': cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test` \
             to generate it",
            path.display()
        )
    })?;
    if committed == rendered {
        return Ok(GoldenStatus::Matched);
    }
    let diff_line = committed
        .lines()
        .zip(rendered.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || committed.lines().count().min(rendered.lines().count()) + 1,
            |i| i + 1,
        );
    Err(format!(
        "golden '{name}' differs from {} starting at line {diff_line}:\n  committed: {}\n  \
         computed:  {}\nIf the change is intentional, regenerate with `UPDATE_GOLDEN=1 cargo \
         test` and commit the diff.",
        path.display(),
        committed.lines().nth(diff_line - 1).unwrap_or("<eof>"),
        rendered.lines().nth(diff_line - 1).unwrap_or("<eof>"),
    ))
}

/// The `"rows"` array of a snapshot (the per-cell table every sweep-style
/// snapshot carries), keyed by each row's `"key"` field.
fn rows_of<'a>(json: &'a Json, what: &str) -> Result<Vec<(&'a str, &'a Json)>, String> {
    let Json::Obj(fields) = json else {
        return Err(format!("{what}: snapshot is not an object"));
    };
    let rows = match fields.iter().find(|(k, _)| k == "rows") {
        Some((_, Json::Arr(rows))) => rows,
        Some(_) => return Err(format!("{what}: 'rows' is not an array")),
        None => return Err(format!("{what}: snapshot has no 'rows' array")),
    };
    rows.iter()
        .map(|row| {
            let Json::Obj(fields) = row else {
                return Err(format!("{what}: row is not an object"));
            };
            match fields.iter().find(|(k, _)| k == "key") {
                Some((_, Json::Str(key))) => Ok((key.as_str(), row)),
                _ => Err(format!("{what}: row has no string 'key' field")),
            }
        })
        .collect()
}

/// [`verify`], degraded to surviving rows: rows named in `skipped`
/// (quarantined cells of a crash-safe sweep) are exempt from comparison,
/// every other row must match the committed snapshot exactly.
///
/// With an empty `skipped` this is plain [`verify`] — byte-for-byte,
/// including the header counters. With quarantined cells the committed
/// file is parsed with the canonical [`Json::parse`] and compared row by
/// row, so one poisoned cell degrades the check instead of voiding it.
///
/// # Errors
///
/// Returns a message when the committed snapshot is missing or
/// unparseable, when a surviving row differs, when a row exists on only
/// one side, or when `UPDATE_GOLDEN=1` is set (a degraded run must never
/// overwrite the golden).
pub fn verify_surviving(
    name: &str,
    snapshot: &Json,
    skipped: &[String],
) -> Result<GoldenStatus, String> {
    if skipped.is_empty() {
        return verify(name, snapshot);
    }
    if update_requested() {
        return Err(format!(
            "golden '{name}': refusing UPDATE_GOLDEN=1 with {} quarantined row(s); \
             fix or rerun the quarantined cells first",
            skipped.len()
        ));
    }
    let path = dir().join(format!("{name}.json"));
    let committed_text = fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden '{name}': cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test` \
             to generate it",
            path.display()
        )
    })?;
    let committed = Json::parse(&committed_text)
        .map_err(|e| format!("golden '{name}': committed snapshot is unparseable: {e}"))?;
    let committed_rows = rows_of(&committed, "committed")?;
    let computed_rows = rows_of(snapshot, "computed")?;
    let committed_keys: Vec<&str> = committed_rows.iter().map(|(k, _)| *k).collect();
    let computed_keys: Vec<&str> = computed_rows.iter().map(|(k, _)| *k).collect();
    if committed_keys != computed_keys {
        return Err(format!(
            "golden '{name}': row sets differ (committed {} rows, computed {} rows); \
             the matrix shape changed — regenerate the snapshot",
            committed_keys.len(),
            computed_keys.len()
        ));
    }
    for ((key, want), (_, got)) in committed_rows.iter().zip(computed_rows) {
        if skipped.iter().any(|s| s == key) {
            continue;
        }
        if *want != got {
            return Err(format!(
                "golden '{name}': surviving row '{key}' differs:\n  committed: {}\n  \
                 computed:  {}",
                want.render(),
                got.render()
            ));
        }
    }
    Ok(GoldenStatus::Matched)
}

/// [`verify`] that panics on error — the form used by golden tests.
///
/// # Panics
///
/// Panics with the [`verify`] error message on any mismatch or IO error.
pub fn assert_matches(name: &str, snapshot: &Json) {
    if let Err(msg) = verify(name, snapshot) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that point `LDIS_GOLDEN_DIR` at a temp dir;
    /// the var is process-global and the harness runs tests in parallel.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn golden_config_is_quick() {
        assert_eq!(golden_config(), RunConfig::quick());
    }

    #[test]
    fn default_dir_points_at_repo_root_tests() {
        // Sibling tests may set LDIS_GOLDEN_DIR; compute the default
        // directly to stay independent of env ordering.
        let d = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
        assert!(d.ends_with("tests/golden"));
    }

    #[test]
    fn verify_surviving_skips_exactly_the_quarantined_rows() {
        if update_requested() {
            return;
        }
        let _env = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let tmp = std::env::temp_dir().join("ldis-golden-surviving");
        fs::create_dir_all(&tmp).unwrap();
        let row = |key: &str, fields: Json| match fields {
            Json::Obj(mut f) => {
                f.insert(0, ("key".to_owned(), Json::str(key)));
                Json::Obj(f)
            }
            other => other,
        };
        let committed = Json::obj([
            ("cells", Json::uint(2)),
            ("quarantined", Json::uint(0)),
            (
                "rows",
                Json::arr([
                    row("art/baseline", Json::obj([("mpki", Json::num(38.25))])),
                    row("mcf/baseline", Json::obj([("mpki", Json::num(120.5))])),
                ]),
            ),
        ]);
        fs::write(tmp.join("unit_surviving.json"), committed.render_pretty()).unwrap();
        std::env::set_var("LDIS_GOLDEN_DIR", &tmp);
        // One quarantined row, surviving row intact: passes.
        let degraded = Json::obj([
            ("cells", Json::uint(2)),
            ("quarantined", Json::uint(1)),
            (
                "rows",
                Json::arr([
                    row(
                        "art/baseline",
                        Json::obj([("quarantined", Json::str("hung"))]),
                    ),
                    row("mcf/baseline", Json::obj([("mpki", Json::num(120.5))])),
                ]),
            ),
        ]);
        let skipped = vec!["art/baseline".to_owned()];
        let ok = verify_surviving("unit_surviving", &degraded, &skipped);
        assert_eq!(ok, Ok(GoldenStatus::Matched), "{ok:?}");
        // A differing *surviving* row still fails.
        let drifted = Json::obj([
            ("cells", Json::uint(2)),
            ("quarantined", Json::uint(1)),
            (
                "rows",
                Json::arr([
                    row(
                        "art/baseline",
                        Json::obj([("quarantined", Json::str("hung"))]),
                    ),
                    row("mcf/baseline", Json::obj([("mpki", Json::num(999.0))])),
                ]),
            ),
        ]);
        let err = verify_surviving("unit_surviving", &drifted, &skipped).unwrap_err();
        std::env::remove_var("LDIS_GOLDEN_DIR");
        assert!(err.contains("mcf/baseline"), "{err}");
    }

    #[test]
    fn mismatch_error_names_line_and_remedy() {
        if update_requested() {
            // Regeneration runs exercise the update path instead.
            return;
        }
        let _env = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let tmp = std::env::temp_dir().join("ldis-golden-unit");
        fs::create_dir_all(&tmp).unwrap();
        fs::write(tmp.join("unit_mismatch.json"), "{\n  \"v\": 1\n}\n").unwrap();
        // Point verify at the temp dir just for this check.
        std::env::set_var("LDIS_GOLDEN_DIR", &tmp);
        let err = verify("unit_mismatch", &Json::obj([("v", Json::uint(2))])).unwrap_err();
        std::env::remove_var("LDIS_GOLDEN_DIR");
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("UPDATE_GOLDEN=1"), "{err}");
    }
}
