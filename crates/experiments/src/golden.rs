//! Golden-snapshot regression harness.
//!
//! Committed JSON snapshots under `tests/golden/` (repository root) pin
//! the quick-config results of the wired experiments — `motivation`,
//! `table3`, `linesize` and `resilience` — so any change to the simulator,
//! the workload models or the sweep engine that moves a number fails the
//! test suite with a line-level diff instead of silently shifting the
//! paper reproduction.
//!
//! Workflow:
//!
//! * `cargo test` compares freshly computed snapshots against the
//!   committed files and fails on any byte difference;
//! * `UPDATE_GOLDEN=1 cargo test` regenerates the files in place; commit
//!   the diff together with the change that motivated it.
//!
//! Snapshots are rendered with the canonical serializer
//! ([`Json::render_pretty`]), which is byte-stable: the same results
//! always produce the same file, so regeneration without a real change is
//! a no-op and `git diff --exit-code tests/golden` can gate CI.

use crate::report::Json;
use crate::RunConfig;
use std::fs;
use std::path::PathBuf;

/// The canonical configuration every golden snapshot is computed with:
/// [`RunConfig::quick`]. The criterion benches in `crates/bench` run the
/// same configuration so benchmark numbers and snapshots describe the
/// same work.
pub fn golden_config() -> RunConfig {
    RunConfig::quick()
}

/// The snapshot directory: `LDIS_GOLDEN_DIR` if set (tests use a
/// temporary directory to exercise the update path), else `tests/golden/`
/// at the repository root.
pub fn dir() -> PathBuf {
    match std::env::var_os("LDIS_GOLDEN_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden"),
    }
}

/// Whether `UPDATE_GOLDEN=1` is in effect.
pub fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

/// What [`verify`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The computed snapshot matched the committed file byte for byte.
    Matched,
    /// `UPDATE_GOLDEN=1`: the file was (re)written.
    Updated,
}

/// Compares the rendered `snapshot` against `tests/golden/<name>.json`,
/// or rewrites the file when `UPDATE_GOLDEN=1`.
///
/// # Errors
///
/// Returns a human-readable message when the file is missing, unreadable,
/// unwritable, or differs from the computed snapshot. The mismatch
/// message names the first differing line and the regeneration command.
pub fn verify(name: &str, snapshot: &Json) -> Result<GoldenStatus, String> {
    let path = dir().join(format!("{name}.json"));
    let rendered = snapshot.render_pretty();
    if update_requested() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("golden '{name}': cannot create {}: {e}", parent.display()))?;
        }
        fs::write(&path, &rendered)
            .map_err(|e| format!("golden '{name}': cannot write {}: {e}", path.display()))?;
        return Ok(GoldenStatus::Updated);
    }
    let committed = fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden '{name}': cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test` \
             to generate it",
            path.display()
        )
    })?;
    if committed == rendered {
        return Ok(GoldenStatus::Matched);
    }
    let diff_line = committed
        .lines()
        .zip(rendered.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || committed.lines().count().min(rendered.lines().count()) + 1,
            |i| i + 1,
        );
    Err(format!(
        "golden '{name}' differs from {} starting at line {diff_line}:\n  committed: {}\n  \
         computed:  {}\nIf the change is intentional, regenerate with `UPDATE_GOLDEN=1 cargo \
         test` and commit the diff.",
        path.display(),
        committed.lines().nth(diff_line - 1).unwrap_or("<eof>"),
        rendered.lines().nth(diff_line - 1).unwrap_or("<eof>"),
    ))
}

/// [`verify`] that panics on error — the form used by golden tests.
///
/// # Panics
///
/// Panics with the [`verify`] error message on any mismatch or IO error.
pub fn assert_matches(name: &str, snapshot: &Json) {
    if let Err(msg) = verify(name, snapshot) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_config_is_quick() {
        assert_eq!(golden_config(), RunConfig::quick());
    }

    #[test]
    fn default_dir_points_at_repo_root_tests() {
        // Sibling tests may set LDIS_GOLDEN_DIR; compute the default
        // directly to stay independent of env ordering.
        let d = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
        assert!(d.ends_with("tests/golden"));
    }

    #[test]
    fn mismatch_error_names_line_and_remedy() {
        if update_requested() {
            // Regeneration runs exercise the update path instead.
            return;
        }
        let tmp = std::env::temp_dir().join("ldis-golden-unit");
        fs::create_dir_all(&tmp).unwrap();
        fs::write(tmp.join("unit_mismatch.json"), "{\n  \"v\": 1\n}\n").unwrap();
        // Point verify at the temp dir just for this check.
        std::env::set_var("LDIS_GOLDEN_DIR", &tmp);
        let err = verify("unit_mismatch", &Json::obj([("v", Json::uint(2))])).unwrap_err();
        std::env::remove_var("LDIS_GOLDEN_DIR");
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("UPDATE_GOLDEN=1"), "{err}");
    }
}
