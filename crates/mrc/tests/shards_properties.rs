//! Property tests for the SHARDS sampler, seeded-SimRng style (no
//! proptest): every trace derives from a fixed root seed via
//! `SimRng::derive_seed_chain`, so a failure reproduces exactly.

use ldis_mem::{LineAddr, SimRng};
use ldis_mrc::{spatial_hash, SampleOutcome, ShardsConfig, ShardsProfiler, SHARDS_MODULUS};
use std::collections::BTreeSet;

const ROOT_SEED: u64 = 0x5A4D_D15A;

fn line(raw_line: u64) -> LineAddr {
    LineAddr::new(raw_line)
}

/// Rate adaptation only ever *removes* lines: after any reference, the
/// threshold has not risen, no tracked line hashes at or above it, and a
/// threshold drop never admits a line that was not already tracked (the
/// only admission is the line just referenced, at its pre-drop
/// threshold).
#[test]
fn threshold_monotonicity_lowering_only_evicts_never_admits() {
    for trace in 0..200u64 {
        let mut rng = SimRng::new(SimRng::derive_seed_chain(ROOT_SEED, &[1, trace]));
        let s_max = 8 + rng.index(56);
        let distinct_lines = 100 + rng.index(400) as u64;
        let mut p = ShardsProfiler::new(ShardsConfig::at_rate(1.0).with_sample_budget(s_max));
        for _ in 0..2_000 {
            let l = line(rng.range(distinct_lines));
            let before: BTreeSet<LineAddr> = p.sample_lines().into_iter().collect();
            let threshold_before = p.threshold();
            let outcome = p.record(l, None, false);
            let after: BTreeSet<LineAddr> = p.sample_lines().into_iter().collect();
            assert!(p.threshold() <= threshold_before, "threshold rose");
            if outcome == SampleOutcome::Cold {
                assert!(
                    spatial_hash(l) < threshold_before,
                    "admitted a line the pre-drop threshold rejects"
                );
            }
            // Nothing but the referenced line is ever admitted.
            for extra in after.difference(&before) {
                assert_eq!(*extra, l, "a threshold change admitted a bystander");
            }
            for resident in &after {
                assert!(
                    spatial_hash(*resident) < p.threshold(),
                    "tracked line at or above the threshold"
                );
            }
            assert!(after.len() <= s_max, "budget exceeded");
        }
    }
}

/// The sample partition is a pure function of the *set* of lines seen —
/// never of arrival order: two differently-seeded shuffles of the same
/// access multiset end with identical membership and threshold. (This is
/// what makes spatially hashed sampling mergeable across shards.)
#[test]
fn hash_partition_is_deterministic_across_derive_seeds() {
    for trace in 0..50u64 {
        let mut setup = SimRng::new(SimRng::derive_seed_chain(ROOT_SEED, &[2, trace]));
        let s_max = 4 + setup.index(28);
        let count = 200 + setup.index(300) as u64;
        let accesses: Vec<u64> = (0..count).map(|_| setup.range(1 << 30)).collect();
        let run = |shuffle_seed: u64| {
            let mut order = accesses.clone();
            let mut rng = SimRng::new(shuffle_seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.index(i + 1));
            }
            let mut p = ShardsProfiler::new(ShardsConfig::at_rate(1.0).with_sample_budget(s_max));
            for &l in &order {
                p.record(line(l), None, false);
            }
            let members: BTreeSet<u64> = p.sample_lines().iter().map(|l| l.raw()).collect();
            (members, p.threshold())
        };
        let a = run(SimRng::derive_seed_chain(ROOT_SEED, &[3, trace]));
        let b = run(SimRng::derive_seed_chain(ROOT_SEED, &[4, trace]));
        assert_eq!(a.0, b.0, "membership depends on arrival order");
        assert_eq!(a.1, b.1, "threshold depends on arrival order");
    }
}

/// The fixed-size invariant over 10k random traces: the sample set (and
/// its high-water mark) never exceeds `S_max`, for any budget, rate or
/// line population.
#[test]
fn s_max_never_exceeded_over_10k_random_traces() {
    for trace in 0..10_000u64 {
        let mut rng = SimRng::new(SimRng::derive_seed_chain(ROOT_SEED, &[5, trace]));
        let s_max = 1 + rng.index(32);
        let rate = match rng.index(3) {
            0 => 1.0,
            1 => 0.5,
            _ => 0.1,
        };
        let population = 1 + rng.range(2_000);
        let mut p = ShardsProfiler::new(ShardsConfig::at_rate(rate).with_sample_budget(s_max));
        let len = 1 + rng.index(64);
        for _ in 0..len {
            p.record(line(rng.range(population)), None, false);
            assert!(
                p.sample_len() <= s_max,
                "trace {trace}: {} tracked > budget {s_max}",
                p.sample_len()
            );
        }
        assert!(
            p.peak_samples() <= s_max,
            "trace {trace}: peak {} > budget {s_max}",
            p.peak_samples()
        );
        assert!(p.threshold() <= SHARDS_MODULUS);
    }
}
