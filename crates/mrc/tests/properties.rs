//! Property tests for the Mattson profiler, driven by seeded `SimRng`
//! traces: MRC monotonicity, the LRU inclusion property, histogram
//! accounting, and a randomized differential check against the direct
//! `BaselineL2` simulator.

use ldis_cache::{BaselineL2, CacheConfig, L2Request, SecondLevel};
use ldis_mem::rng::SimRng;
use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};
use ldis_mrc::{MattsonL2, MattsonProfiler};
use std::collections::BTreeSet;

/// One random L2-level event: a demand access or an L1D eviction
/// notification, the two entry points of the `SecondLevel` trait.
#[derive(Clone, Copy, Debug)]
enum Event {
    Access(L2Request),
    L1dEvict(LineAddr, u16, bool),
}

/// A seeded random event stream with enough locality (small line space,
/// skewed reuse) to exercise hits, evictions, merges and writebacks.
fn trace(seed: u64, len: usize, lines: u64) -> Vec<Event> {
    let mut rng = SimRng::new(seed);
    let mut recent: Vec<LineAddr> = Vec::new();
    (0..len)
        .map(|_| {
            let line = if !recent.is_empty() && rng.chance(0.6) {
                *rng.choose(&recent)
            } else {
                LineAddr::new(rng.range(lines))
            };
            recent.push(line);
            if recent.len() > 24 {
                recent.remove(0);
            }
            if rng.chance(0.15) {
                Event::L1dEvict(line, (rng.next_u64() & 0xff) as u16, rng.chance(0.5))
            } else {
                let req = L2Request {
                    line,
                    word: WordIndex::new(rng.range(8) as u8),
                    write: rng.chance(0.3),
                    is_instr: rng.chance(0.2),
                    pc: ldis_mem::Addr::new(rng.range(1 << 20) * 4),
                };
                Event::Access(req)
            }
        })
        .collect()
}

fn drive<L2: SecondLevel>(l2: &mut L2, events: &[Event]) {
    for ev in events {
        match *ev {
            Event::Access(req) => {
                l2.access(req);
            }
            Event::L1dEvict(line, bits, dirty) => {
                l2.on_l1d_evict(line, Footprint::from_bits(bits), dirty);
            }
        }
    }
}

#[test]
fn misses_are_non_increasing_in_associativity_and_size() {
    let g = LineGeometry::default();
    // 4..64 kB at fixed 16 sets (associativity axis) plus growing set
    // counts at fixed 4 ways (size axis).
    let configs: Vec<CacheConfig> = [1u32, 2, 4, 8]
        .iter()
        .map(|&w| CacheConfig::with_sets(16, w, g))
        .chain(
            [16u64, 32, 64]
                .iter()
                .map(|&s| CacheConfig::with_sets(s, 4, g)),
        )
        .collect();
    for seed in 0..8u64 {
        let mut l2 = MattsonL2::for_configs(&configs);
        drive(&mut l2, &trace(0xA5EED ^ seed, 20_000, 4_000));
        let miss = |c: &CacheConfig| {
            l2.result_for(c)
                .unwrap_or_else(|| panic!("config {c:?} profiled"))
                .line_misses
        };
        for pair in configs[..4].windows(2) {
            assert!(
                miss(&pair[0]) >= miss(&pair[1]),
                "seed {seed}: misses increased from {} ways to {} ways",
                pair[0].ways(),
                pair[1].ways()
            );
        }
        for pair in configs[4..].windows(2) {
            assert!(
                miss(&pair[0]) >= miss(&pair[1]),
                "seed {seed}: misses increased from {} to {} sets",
                pair[0].num_sets(),
                pair[1].num_sets()
            );
        }
    }
}

#[test]
fn lru_stacks_satisfy_the_inclusion_property() {
    // An A-way cache's contents must be a subset of the (A+k)-way
    // cache's contents at every point; checking at the end of several
    // seeded traces (with interior churn) covers the interesting states.
    for seed in 0..8u64 {
        let mut p = MattsonProfiler::new(8, &[1, 2, 4, 8], 8);
        let mut rng = SimRng::new(0x1AC1 ^ seed);
        let mut seen = BTreeSet::new();
        for _ in 0..5_000 {
            let line = LineAddr::new(rng.range(600));
            let first = seen.insert(line);
            p.record(
                line,
                Some(WordIndex::new(rng.range(8) as u8)),
                rng.chance(0.3),
                false,
                first,
            );
        }
        let mut prev: Option<BTreeSet<LineAddr>> = None;
        for ways in [1u32, 2, 4, 8] {
            let resident: BTreeSet<LineAddr> = p.resident_lines(ways).into_iter().collect();
            if let Some(smaller) = &prev {
                assert!(
                    smaller.is_subset(&resident),
                    "seed {seed}: {}-way contents not included in {ways}-way",
                    smaller.len()
                );
            }
            prev = Some(resident);
        }
    }
}

#[test]
fn distance_histogram_and_miss_classes_partition_the_accesses() {
    for seed in 0..8u64 {
        let mut p = MattsonProfiler::new(4, &[2, 6], 8);
        let mut rng = SimRng::new(0xC0DE ^ seed);
        let mut seen = BTreeSet::new();
        for _ in 0..10_000 {
            let line = LineAddr::new(rng.range(200));
            let first = seen.insert(line);
            p.record(line, Some(WordIndex::new(0)), false, false, first);
        }
        assert_eq!(
            p.distance_histogram().total() + p.beyond() + p.compulsory(),
            p.accesses(),
            "seed {seed}: every access is a profiled reuse, a deep reuse, \
             or a first touch"
        );
        assert_eq!(p.compulsory() as usize, seen.len(), "seed {seed}");
        // hits + misses == accesses at every profiled associativity.
        for ways in [2u32, 6] {
            assert_eq!(p.hits_at(ways) + p.misses_at(ways), p.accesses());
        }
    }
}

/// The core differential property: a `MattsonL2` profiling several
/// configurations at once reproduces, for each of them, the *entire*
/// statistics block a dedicated `BaselineL2` produces on the same event
/// stream — misses, compulsory classification, evictions, writebacks and
/// the words-used-at-eviction histogram, bit for bit.
#[test]
fn profiler_matches_direct_simulation_on_random_traces() {
    let g = LineGeometry::default();
    let configs = [
        CacheConfig::with_sets(16, 1, g),
        CacheConfig::with_sets(16, 2, g),
        CacheConfig::with_sets(16, 8, g),
        CacheConfig::with_sets(64, 4, g),
    ];
    for seed in 0..12u64 {
        let events = trace(0xD1FF ^ (seed * 7919), 30_000, 2_500);
        let mut mattson = MattsonL2::for_configs(&configs);
        drive(&mut mattson, &events);
        for cfg in &configs {
            let mut direct = BaselineL2::new(*cfg);
            drive(&mut direct, &events);
            let got = mattson
                .result_for(cfg)
                .unwrap_or_else(|| panic!("config {cfg:?} profiled"));
            let want = direct.stats();
            let ctx = format!("seed {seed}, {} sets x {} ways", cfg.num_sets(), cfg.ways());
            assert_eq!(got.accesses, want.accesses, "{ctx}: accesses");
            assert_eq!(got.line_misses, want.line_misses, "{ctx}: misses");
            assert_eq!(got.hits, want.loc_hits, "{ctx}: hits");
            assert_eq!(
                got.compulsory_misses, want.compulsory_misses,
                "{ctx}: compulsory"
            );
            assert_eq!(got.evictions, want.evictions, "{ctx}: evictions");
            assert_eq!(got.writebacks, want.writebacks, "{ctx}: writebacks");
            assert_eq!(
                got.words_used_at_evict, want.words_used_at_evict,
                "{ctx}: words-used histogram"
            );
        }
    }
}

/// Warmup-reset differential: resetting stats mid-stream (the
/// `TraceLength::warmup` path of the experiment runner) must leave the
/// profiler and the direct simulator in agreement on the measured tail.
#[test]
fn profiler_matches_direct_simulation_across_a_stats_reset() {
    let g = LineGeometry::default();
    let configs = [
        CacheConfig::with_sets(16, 2, g),
        CacheConfig::with_sets(16, 4, g),
    ];
    for seed in 0..6u64 {
        let events = trace(0x3E5E7 ^ seed, 24_000, 2_000);
        let (warm, measured) = events.split_at(events.len() / 3);
        let mut mattson = MattsonL2::for_configs(&configs);
        drive(&mut mattson, warm);
        mattson.reset_stats();
        drive(&mut mattson, measured);
        for cfg in &configs {
            let mut direct = BaselineL2::new(*cfg);
            drive(&mut direct, warm);
            direct.reset_stats();
            drive(&mut direct, measured);
            let got = mattson
                .result_for(cfg)
                .unwrap_or_else(|| panic!("config {cfg:?} profiled"));
            let want = direct.stats();
            let ctx = format!("seed {seed}, {} ways", cfg.ways());
            assert_eq!(got.line_misses, want.line_misses, "{ctx}: misses");
            assert_eq!(
                got.compulsory_misses, want.compulsory_misses,
                "{ctx}: compulsory"
            );
            assert_eq!(got.evictions, want.evictions, "{ctx}: evictions");
            assert_eq!(got.writebacks, want.writebacks, "{ctx}: writebacks");
            assert_eq!(
                got.words_used_at_evict, want.words_used_at_evict,
                "{ctx}: words-used histogram"
            );
        }
    }
}
