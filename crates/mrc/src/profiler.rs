//! The per-set Mattson stack-distance profiler for one set count.

use ldis_cache::CacheConfig;
use ldis_mem::stats::{Counter, Histogram};
use ldis_mem::{Footprint, LineAddr, WordIndex};

/// Per-associativity state of one stack entry.
///
/// Install times differ between associativities — a line that hits in a
/// 12-way cache may simultaneously miss (and therefore reinstall with a
/// fresh footprint) in the 8-way cache — so footprint, dirty and
/// instruction state is kept per tier, exactly as if each tier ran its
/// own cache.
#[derive(Clone, Copy, Debug)]
struct TierSlot {
    footprint: Footprint,
    dirty: bool,
    is_instr: bool,
}

impl TierSlot {
    fn install(word: Option<WordIndex>, write: bool, is_instr: bool) -> TierSlot {
        let mut footprint = Footprint::empty();
        if let Some(w) = word {
            footprint.touch(w);
        }
        TierSlot {
            footprint,
            dirty: write,
            is_instr,
        }
    }
}

/// One line of a per-set LRU stack, carrying its per-tier slot state.
#[derive(Clone, Debug)]
struct StackEntry {
    line: LineAddr,
    slots: Vec<TierSlot>,
}

/// Accumulated per-associativity counters: what a direct simulation of
/// this tier's cache would have recorded in its `L2Stats`.
#[derive(Clone, Debug)]
struct TierStats {
    ways: u32,
    evictions: u64,
    writebacks: u64,
    words_used_at_evict: Histogram,
}

impl TierStats {
    fn new(ways: u32, words_per_line: u8) -> TierStats {
        TierStats {
            ways,
            evictions: 0,
            writebacks: 0,
            words_used_at_evict: Histogram::new(words_per_line as usize + 1),
        }
    }

    fn record_eviction(&mut self, slot: &TierSlot) {
        self.evictions.bump();
        if slot.dirty {
            self.writebacks.bump();
        }
        if !slot.is_instr {
            self.words_used_at_evict
                .record(slot.footprint.used_words() as usize);
        }
    }
}

/// A per-set Mattson stack-distance profiler for one set count.
///
/// Maintains one LRU stack per set, truncated to the deepest profiled
/// associativity (`max_ways`), a stack-distance histogram, and per-tier
/// footprint/eviction state. One pass over an access stream yields, for
/// *every* profiled associativity `A` at this set count:
///
/// * exact miss counts ([`misses_at`](MattsonProfiler::misses_at)):
///   accesses whose stack distance is `>= A`, plus reuses beyond the
///   profiled depth, plus first-touch (compulsory) misses;
/// * exact eviction, writeback and words-used-at-eviction statistics
///   ([`evictions_at`](MattsonProfiler::evictions_at) and friends),
///   byte-identical to a direct LRU simulation of that tier.
///
/// First-touch classification is supplied by the caller (see
/// [`record`](MattsonProfiler::record)) so that several profilers with
/// different set counts can share one global seen-lines set.
#[derive(Clone, Debug)]
pub struct MattsonProfiler {
    num_sets: u64,
    words_per_line: u8,
    tiers: Vec<TierStats>,
    max_ways: u32,
    sets: Vec<Vec<StackEntry>>,
    /// Histogram of observed stack distances `0..max_ways` (hits in the
    /// deepest tier). Reuses deeper than `max_ways` land in `beyond`.
    distance: Histogram,
    beyond: u64,
    compulsory: u64,
    accesses: u64,
}

impl MattsonProfiler {
    /// Creates a profiler for `num_sets` sets covering the given
    /// associativities (deduplicated; order preserved internally as
    /// ascending). `num_sets` must be a power of two (mask indexing, the
    /// same contract as [`CacheConfig`]) and at least one associativity
    /// must be given.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a positive power of two or `ways` is
    /// empty — construction-time contract violations, matching the
    /// [`CacheConfig::new`] behavior.
    pub fn new(num_sets: u64, ways: &[u32], words_per_line: u8) -> MattsonProfiler {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two, got {num_sets}"
        );
        assert!(!ways.is_empty(), "at least one associativity is required");
        let mut sorted: Vec<u32> = ways.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let max_ways = sorted.last().copied().unwrap_or(1).max(1);
        MattsonProfiler {
            num_sets,
            words_per_line,
            tiers: sorted
                .into_iter()
                .map(|w| TierStats::new(w, words_per_line))
                .collect(),
            max_ways,
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            distance: Histogram::new(max_ways as usize),
            beyond: 0,
            compulsory: 0,
            accesses: 0,
        }
    }

    /// The profiled set count.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// The profiled associativities, ascending.
    pub fn tiers(&self) -> impl Iterator<Item = u32> + '_ {
        self.tiers.iter().map(|t| t.ways)
    }

    /// Accesses recorded since construction (or the last
    /// [`reset_counters`](MattsonProfiler::reset_counters)).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (compulsory) misses recorded.
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// The stack-distance histogram (bin `d` = reuses observed at
    /// distance `d`), not counting reuses beyond the profiled depth.
    pub fn distance_histogram(&self) -> &Histogram {
        &self.distance
    }

    /// Reuses whose stack distance exceeded the deepest profiled
    /// associativity (misses in every profiled tier, but not compulsory).
    pub fn beyond(&self) -> u64 {
        self.beyond
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() & (self.num_sets - 1)) as usize
    }

    /// Records one demand access, returning the observed stack distance
    /// (`None` for lines absent from the profiled depth). `first_touch`
    /// is the global never-seen-before classification maintained by the
    /// caller; it only affects compulsory accounting, never hit/miss
    /// outcomes.
    ///
    /// Mirrors `BaselineL2::access` + `SetAssocCache::install` exactly:
    /// a hit at distance `d` touches `word` and ors `write` into the
    /// dirty bit for every tier deeper than `d`; every shallower tier
    /// misses, evicts its LRU line (the entry at stack position
    /// `ways - 1`, when the set holds that many lines) and reinstalls the
    /// accessed line with a fresh footprint.
    pub fn record(
        &mut self,
        line: LineAddr,
        word: Option<WordIndex>,
        write: bool,
        is_instr: bool,
        first_touch: bool,
    ) -> Option<usize> {
        self.accesses.bump();
        let set_idx = self.set_index(line);
        let Some(stack) = self.sets.get_mut(set_idx) else {
            // Unreachable: set_index masks into 0..num_sets. Degrade to
            // "not profiled" rather than panicking mid-simulation.
            return None;
        };
        let depth = stack.iter().position(|e| e.line == line);
        match depth {
            Some(d) => {
                self.distance.record(d);
                for (ti, tier) in self.tiers.iter_mut().enumerate() {
                    let ways = tier.ways as usize;
                    if d < ways {
                        // Hit in this tier: touch the demanded word.
                        if let Some(slot) = stack.get_mut(d).and_then(|e| e.slots.get_mut(ti)) {
                            if let Some(w) = word {
                                slot.footprint.touch(w);
                            }
                            slot.dirty |= write;
                        }
                    } else {
                        // Miss in this tier: its LRU line (stack position
                        // ways-1, which exists because d >= ways) leaves
                        // the tier, and the accessed line reinstalls.
                        if let Some(victim) = stack.get(ways - 1).and_then(|e| e.slots.get(ti)) {
                            tier.record_eviction(victim);
                        }
                        if let Some(slot) = stack.get_mut(d).and_then(|e| e.slots.get_mut(ti)) {
                            *slot = TierSlot::install(word, write, is_instr);
                        }
                    }
                }
                // Promote to MRU.
                let entry = stack.remove(d);
                stack.insert(0, entry);
            }
            None => {
                if first_touch {
                    self.compulsory += 1;
                } else {
                    self.beyond += 1;
                }
                // Miss in every tier: each full tier evicts its LRU line.
                for (ti, tier) in self.tiers.iter_mut().enumerate() {
                    let ways = tier.ways as usize;
                    if let Some(victim) = stack.get(ways - 1).and_then(|e| e.slots.get(ti)) {
                        tier.record_eviction(victim);
                    }
                }
                // Reuse the allocation of the entry that falls off the
                // profiled depth, if any.
                let mut entry = if stack.len() >= self.max_ways as usize {
                    stack.pop()
                } else {
                    None
                }
                .unwrap_or_else(|| StackEntry {
                    line,
                    slots: Vec::with_capacity(self.tiers.len()),
                });
                entry.line = line;
                entry.slots.clear();
                entry.slots.extend(
                    self.tiers
                        .iter()
                        .map(|_| TierSlot::install(word, write, is_instr)),
                );
                stack.insert(0, entry);
            }
        }
        depth
    }

    /// Merges an L1D-evicted footprint into the line's slot of every tier
    /// the line is resident in, marking it dirty if `dirty`; for tiers
    /// where the line is *not* resident, counts a memory writeback when
    /// `dirty` (the line is gone, so the data goes to memory). Mirrors
    /// `BaselineL2::on_l1d_evict`. Never updates recency.
    pub fn merge_l1d_evict(&mut self, line: LineAddr, fp: Footprint, dirty: bool) {
        let set_idx = self.set_index(line);
        let Some(stack) = self.sets.get_mut(set_idx) else {
            return;
        };
        let depth = stack.iter().position(|e| e.line == line);
        for (ti, tier) in self.tiers.iter_mut().enumerate() {
            let resident = depth.is_some_and(|d| d < tier.ways as usize);
            if resident {
                if let Some(slot) = depth
                    .and_then(|d| stack.get_mut(d))
                    .and_then(|e| e.slots.get_mut(ti))
                {
                    slot.footprint.merge(fp);
                    slot.dirty |= dirty;
                }
            } else if dirty {
                tier.writebacks.bump();
            }
        }
    }

    fn tier(&self, ways: u32) -> Option<&TierStats> {
        self.tiers.iter().find(|t| t.ways == ways)
    }

    /// Exact demand misses of an `A`-way LRU cache at this set count:
    /// reuses at stack distance `>= A`, plus reuses beyond the profiled
    /// depth, plus compulsory misses. `ways` may be any value up to the
    /// deepest profiled tier (miss counts need only the distance
    /// histogram, not tier state).
    pub fn misses_at(&self, ways: u32) -> u64 {
        let deep: u64 = self
            .distance
            .iter()
            .filter(|&(d, _)| d >= ways as usize)
            .map(|(_, c)| c)
            .sum();
        deep + self.beyond + self.compulsory
    }

    /// Hits of an `A`-way cache (complement of [`misses_at`]).
    pub fn hits_at(&self, ways: u32) -> u64 {
        self.accesses - self.misses_at(ways)
    }

    /// Evictions a direct simulation of the `A`-way tier would have
    /// recorded. `None` if `ways` is not a profiled tier.
    pub fn evictions_at(&self, ways: u32) -> Option<u64> {
        self.tier(ways).map(|t| t.evictions)
    }

    /// Writebacks (dirty evictions plus non-resident dirty L1D evicts) of
    /// the `A`-way tier. `None` if `ways` is not a profiled tier.
    pub fn writebacks_at(&self, ways: u32) -> Option<u64> {
        self.tier(ways).map(|t| t.writebacks)
    }

    /// The words-used-at-eviction histogram of the `A`-way tier (data
    /// lines only, like `L2Stats::words_used_at_evict`). `None` if `ways`
    /// is not a profiled tier.
    pub fn words_used_at_evict(&self, ways: u32) -> Option<&Histogram> {
        self.tier(ways).map(|t| &t.words_used_at_evict)
    }

    /// The words-used histogram of the `A`-way tier covering both evicted
    /// lines *and* the data lines still resident at the end of the run —
    /// the `run_baseline_with_words` measurement of Table 6 / Figure 1.
    /// `None` if `ways` is not a profiled tier.
    pub fn words_used_with_resident(&self, ways: u32) -> Option<Histogram> {
        let ti = self.tiers.iter().position(|t| t.ways == ways)?;
        let mut hist = self.tiers.get(ti)?.words_used_at_evict.clone();
        for stack in &self.sets {
            for entry in stack.iter().take(ways as usize) {
                if let Some(slot) = entry.slots.get(ti) {
                    if !slot.is_instr {
                        hist.record(slot.footprint.used_words() as usize);
                    }
                }
            }
        }
        Some(hist)
    }

    /// The lines resident in the `A`-way tier, set by set (the top `A`
    /// stack entries of every set) — the inclusion-property view used by
    /// the property tests.
    pub fn resident_lines(&self, ways: u32) -> Vec<LineAddr> {
        self.sets
            .iter()
            .flat_map(|stack| stack.iter().take(ways as usize).map(|e| e.line))
            .collect()
    }

    /// Zeroes every counter and histogram without touching stack state or
    /// tier slots — the warmup-exclusion contract of
    /// `SecondLevel::reset_stats` (caches stay warm, counters reset).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.beyond = 0;
        self.compulsory = 0;
        self.distance.clear();
        for tier in &mut self.tiers {
            tier.evictions = 0;
            tier.writebacks = 0;
            tier.words_used_at_evict.clear();
        }
    }

    /// Whether this profiler answers `cfg` (same set count, profiled
    /// associativity, same words-per-line).
    pub fn covers(&self, cfg: &CacheConfig) -> bool {
        cfg.num_sets() == self.num_sets
            && cfg.geometry().words_per_line() == self.words_per_line
            && self.tiers.iter().any(|t| t.ways == cfg.ways())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    /// Replays `lines` as data reads of word 0 with caller-managed
    /// first-touch tracking.
    fn replay(p: &mut MattsonProfiler, lines: &[u64]) {
        let mut seen = std::collections::BTreeSet::new();
        for &l in lines {
            let first = seen.insert(l);
            p.record(addr(l), Some(WordIndex::new(0)), false, false, first);
        }
    }

    #[test]
    fn distances_classify_hits_per_associativity() {
        // One set (num_sets=1): a, b, c, a → a's reuse distance is 2.
        let mut p = MattsonProfiler::new(1, &[1, 2, 4], 8);
        replay(&mut p, &[10, 11, 12, 10]);
        assert_eq!(p.accesses(), 4);
        assert_eq!(p.compulsory(), 3);
        assert_eq!(p.distance_histogram().count(2), 1);
        // 1-way and 2-way miss the reuse; 4-way hits it.
        assert_eq!(p.misses_at(1), 4);
        assert_eq!(p.misses_at(2), 4);
        assert_eq!(p.misses_at(3), 3);
        assert_eq!(p.misses_at(4), 3);
        assert_eq!(p.hits_at(4), 1);
    }

    #[test]
    fn beyond_depth_reuses_are_misses_everywhere() {
        let mut p = MattsonProfiler::new(1, &[2], 8);
        replay(&mut p, &[1, 2, 3, 1]); // distance 2 ≥ max depth 2 → beyond
        assert_eq!(p.beyond(), 1);
        assert_eq!(p.misses_at(2), 4);
        assert_eq!(p.misses_at(1), 4);
        // Histogram sum + beyond + compulsory == accesses.
        assert_eq!(
            p.distance_histogram().total() + p.beyond() + p.compulsory(),
            p.accesses()
        );
    }

    #[test]
    fn evictions_fire_only_when_a_tier_is_full() {
        let mut p = MattsonProfiler::new(1, &[2, 4], 8);
        replay(&mut p, &[1, 2, 3]);
        // 2-way tier evicted once (installing 3 evicts 1); 4-way never.
        assert_eq!(p.evictions_at(2), Some(1));
        assert_eq!(p.evictions_at(4), Some(0));
        assert_eq!(p.evictions_at(3), None, "3 is not a profiled tier");
    }

    #[test]
    fn per_tier_footprints_diverge_after_a_small_tier_miss() {
        // Line 1 touches word 0, then reuses at distance 2 with word 5:
        // the 4-way tier accumulates {0,5}, the 2-way tier reinstalls
        // with just {5}.
        let mut p = MattsonProfiler::new(1, &[2, 4], 8);
        let mut seen = std::collections::BTreeSet::new();
        for (l, w) in [(1u64, 0u8), (2, 0), (3, 0), (1, 5)] {
            let first = seen.insert(l);
            p.record(addr(l), Some(WordIndex::new(w)), false, false, first);
        }
        // Evict everything from the 2-way tier and check histograms.
        for l in [7u64, 8, 9, 10] {
            let first = seen.insert(l);
            p.record(addr(l), Some(WordIndex::new(0)), false, false, first);
        }
        // words-used of line 1 at its 2-way eviction: 1 word ({5}).
        let h2 = p.words_used_at_evict(2).expect("tier 2 exists");
        assert!(h2.count(1) >= 1);
        // 4-way tier evicted line 1 with 2 words ({0,5}).
        let h4 = p.words_used_at_evict(4).expect("tier 4 exists");
        assert_eq!(h4.count(2), 1, "4-way saw both words: {h4}");
    }

    #[test]
    fn l1d_evict_merges_when_resident_and_writes_back_otherwise() {
        let mut p = MattsonProfiler::new(1, &[1, 2], 8);
        replay(&mut p, &[1, 2]); // stack: 2 (MRU), 1
                                 // Line 1 is resident only in the 2-way tier.
        p.merge_l1d_evict(addr(1), Footprint::from_bits(0b110), true);
        assert_eq!(p.writebacks_at(1), Some(1), "1-way: gone, dirty → memory");
        assert_eq!(p.writebacks_at(2), Some(0), "2-way: merged in place");
        // Evict line 1 from the 2-way tier; its merged words count 3 ({0,1,2}).
        replay(&mut p, &[3]);
        let h = p.words_used_at_evict(2).expect("tier exists");
        assert_eq!(h.count(3), 1, "{h}");
        // The merge marked it dirty → the eviction writes back.
        assert_eq!(p.writebacks_at(2), Some(1));
    }

    #[test]
    fn reset_counters_keeps_the_stacks_warm() {
        let mut p = MattsonProfiler::new(1, &[2], 8);
        replay(&mut p, &[1, 2]);
        p.reset_counters();
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.misses_at(2), 0);
        // Line 1 is still on the stack: reusing it is a hit, not a miss.
        p.record(addr(1), Some(WordIndex::new(0)), false, false, false);
        assert_eq!(p.misses_at(2), 0);
        assert_eq!(p.hits_at(2), 1);
    }

    #[test]
    fn sets_partition_by_address_mask() {
        let mut p = MattsonProfiler::new(2, &[1], 8);
        // Lines 0 and 2 share set 0; line 1 is alone in set 1.
        replay(&mut p, &[0, 1, 0]);
        assert_eq!(p.misses_at(1), 2, "line 1 does not disturb set 0");
    }

    #[test]
    fn covers_matches_config_shape() {
        let p = MattsonProfiler::new(2048, &[8, 12], 8);
        let g = ldis_mem::LineGeometry::default();
        assert!(p.covers(&CacheConfig::new(1 << 20, 8, g)));
        assert!(p.covers(&CacheConfig::with_sets(2048, 12, g)));
        assert!(!p.covers(&CacheConfig::new(2 << 20, 8, g)), "4096 sets");
        assert!(!p.covers(&CacheConfig::with_sets(2048, 10, g)), "no tier");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = MattsonProfiler::new(3, &[2], 8);
    }

    #[test]
    #[should_panic(expected = "at least one associativity")]
    fn rejects_empty_tier_list() {
        let _ = MattsonProfiler::new(4, &[], 8);
    }
}
