//! A [`SecondLevel`] organization that profiles instead of simulating:
//! one [`MattsonProfiler`] per distinct set count, fed by the unmodified
//! L1 hierarchy.

use crate::MattsonProfiler;
use ldis_cache::{CacheConfig, L2Outcome, L2Request, L2Response, L2Stats, SecondLevel};
use ldis_mem::stats::{Counter, Histogram};
use ldis_mem::{Footprint, LineAddr, LineGeometry};
use std::collections::BTreeSet;

/// The exact counters a direct [`BaselineL2`](ldis_cache::BaselineL2)
/// simulation of one traditional configuration would have produced,
/// reconstructed from a single profiling pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigResult {
    /// The configuration this result answers.
    pub config: CacheConfig,
    /// Total demand accesses (identical for every configuration: the L1
    /// request stream does not depend on the L2's size).
    pub accesses: u64,
    /// Demand hits (`loc_hits` of the traditional cache).
    pub hits: u64,
    /// Demand misses (`line_misses`).
    pub line_misses: u64,
    /// First-touch misses (`compulsory_misses`).
    pub compulsory_misses: u64,
    /// Lines evicted from the cache.
    pub evictions: u64,
    /// Dirty lines written back to memory (evictions plus non-resident
    /// dirty L1D evicts).
    pub writebacks: u64,
    /// Words used per data line at eviction (`words_used_at_evict`).
    pub words_used_at_evict: Histogram,
    /// Words used per data line, evicted lines plus the lines still
    /// resident at the end of the run — the Table 6 measurement.
    pub words_used_with_resident: Histogram,
}

impl ConfigResult {
    /// Misses per kilo-instruction given the trace's instruction count,
    /// through the same shared helper as `L2Stats::mpki` so the float
    /// path is bit-identical to direct simulation.
    pub fn mpki(&self, instructions: u64) -> f64 {
        ldis_mem::stats::mpki(self.line_misses, instructions)
    }
}

/// A second-level "cache" that answers every profiled traditional
/// configuration from one pass.
///
/// Behaves exactly like [`BaselineL2`](ldis_cache::BaselineL2) as far as
/// the L1 hierarchy can observe — same geometry, same full
/// `valid_words` on every response, same `"baseline"` report name (so
/// the per-cell seed derivation of `ldis-experiments` replays the same
/// trace a direct baseline run would see) — while internally maintaining
/// Mattson stacks for every distinct set count among its configurations.
///
/// The hit/miss outcome it reports upward is that of its *primary*
/// configuration (the first one passed to
/// [`for_configs`](MattsonL2::for_configs)); since the L1s ignore L2
/// outcomes when generating requests, this choice does not perturb the
/// stream.
#[derive(Clone, Debug)]
pub struct MattsonL2 {
    geometry: LineGeometry,
    configs: Vec<CacheConfig>,
    profilers: Vec<MattsonProfiler>,
    /// Global first-touch tracker shared by every profiler, mirroring
    /// `CompulsoryTracker` (first access to a line misses in every
    /// configuration, so compulsory classification is size-independent).
    seen: BTreeSet<LineAddr>,
    /// Counters of the primary configuration, kept in `L2Stats` form for
    /// the `SecondLevel::stats` accessor.
    stats: L2Stats,
}

impl MattsonL2 {
    /// Builds a profiler covering every configuration in `configs`.
    ///
    /// Configurations are grouped by set count — one Mattson stack array
    /// answers all associativities of one set count — and must share a
    /// single line geometry. The first configuration is the *primary*
    /// one: its hit/miss outcomes surface through
    /// [`SecondLevel::stats`].
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the configurations disagree on
    /// line geometry — construction-time contract violations.
    pub fn for_configs(configs: &[CacheConfig]) -> MattsonL2 {
        assert!(
            !configs.is_empty(),
            "MattsonL2 needs at least one configuration"
        );
        let geometry = configs
            .first()
            .map_or_else(LineGeometry::default, CacheConfig::geometry);
        assert!(
            configs.iter().all(|c| c.geometry() == geometry),
            "all profiled configurations must share one line geometry"
        );
        // Group associativities by set count, preserving nothing of the
        // input order (profilers sort tiers internally; set counts are
        // collected in ascending order for determinism).
        let mut set_counts: Vec<u64> = configs.iter().map(CacheConfig::num_sets).collect();
        set_counts.sort_unstable();
        set_counts.dedup();
        let profilers = set_counts
            .into_iter()
            .map(|sets| {
                let ways: Vec<u32> = configs
                    .iter()
                    .filter(|c| c.num_sets() == sets)
                    .map(CacheConfig::ways)
                    .collect();
                MattsonProfiler::new(sets, &ways, geometry.words_per_line())
            })
            .collect();
        MattsonL2 {
            geometry,
            configs: configs.to_vec(),
            profilers,
            seen: BTreeSet::new(),
            stats: L2Stats::new(
                geometry.words_per_line(),
                configs.first().map_or(1, CacheConfig::ways),
            ),
        }
    }

    /// The profiled configurations, in the order given at construction.
    pub fn configs(&self) -> &[CacheConfig] {
        &self.configs
    }

    /// The underlying profilers, one per distinct set count (ascending).
    pub fn profilers(&self) -> &[MattsonProfiler] {
        &self.profilers
    }

    fn profiler_for(&self, cfg: &CacheConfig) -> Option<&MattsonProfiler> {
        self.profilers.iter().find(|p| p.covers(cfg))
    }

    /// The reconstructed [`BaselineL2`](ldis_cache::BaselineL2) counters
    /// for `cfg`, or `None` if `cfg` was not profiled (different set
    /// count, associativity or geometry than anything passed to
    /// [`for_configs`](MattsonL2::for_configs)).
    pub fn result_for(&self, cfg: &CacheConfig) -> Option<ConfigResult> {
        let p = self.profiler_for(cfg)?;
        let ways = cfg.ways();
        Some(ConfigResult {
            config: *cfg,
            accesses: p.accesses(),
            hits: p.hits_at(ways),
            line_misses: p.misses_at(ways),
            compulsory_misses: p.compulsory(),
            evictions: p.evictions_at(ways)?,
            writebacks: p.writebacks_at(ways)?,
            words_used_at_evict: p.words_used_at_evict(ways)?.clone(),
            words_used_with_resident: p.words_used_with_resident(ways)?,
        })
    }

    /// Results for every profiled configuration, in construction order.
    pub fn results(&self) -> Vec<ConfigResult> {
        self.configs
            .iter()
            .filter_map(|c| self.result_for(c))
            .collect()
    }
}

impl SecondLevel for MattsonL2 {
    fn access(&mut self, req: L2Request) -> L2Response {
        let word = if req.is_instr { None } else { Some(req.word) };
        let first_touch = self.seen.insert(req.line);
        let primary = self.configs.first().copied();
        let mut primary_depth = None;
        for p in &mut self.profilers {
            let depth = p.record(req.line, word, req.write, req.is_instr, first_touch);
            if primary.as_ref().is_some_and(|c| p.covers(c)) {
                primary_depth = depth;
            }
        }
        // Primary-configuration bookkeeping, mirroring BaselineL2.
        self.stats.accesses.bump();
        let primary_ways = self.configs.first().map_or(0, CacheConfig::ways);
        let hit = primary_depth.is_some_and(|d| d < primary_ways as usize);
        let outcome = if hit {
            self.stats.loc_hits.bump();
            L2Outcome::LocHit
        } else {
            self.stats.line_misses.bump();
            if first_touch {
                self.stats.compulsory_misses.bump();
            }
            L2Outcome::LineMiss
        };
        L2Response {
            outcome,
            valid_words: Footprint::full(self.geometry.words_per_line()),
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, dirty: bool) {
        for p in &mut self.profilers {
            p.merge_l1d_evict(line, footprint, dirty);
        }
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        // Mirror BaselineL2::reset_stats: zero the counters, keep the
        // (stack) contents and the compulsory-classification state warm.
        let ways = self.configs.first().map_or(0, CacheConfig::ways);
        self.stats = L2Stats::new(self.geometry.words_per_line(), ways);
        for p in &mut self.profilers {
            p.reset_counters();
        }
    }

    fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    fn name(&self) -> &str {
        // The same report label as BaselineL2, so `RunConfig::seed_for`
        // derives the same per-cell seed and the profiler sees the exact
        // trace a direct baseline simulation would see.
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_cache::{BaselineL2, Hierarchy};
    use ldis_mem::{Access, Addr};

    fn geometry() -> LineGeometry {
        LineGeometry::default()
    }

    fn tiny_configs() -> Vec<CacheConfig> {
        let g = geometry();
        vec![
            CacheConfig::with_sets(4, 2, g),
            CacheConfig::with_sets(4, 4, g),
            CacheConfig::with_sets(8, 2, g),
        ]
    }

    #[test]
    fn groups_profilers_by_set_count() {
        let l2 = MattsonL2::for_configs(&tiny_configs());
        assert_eq!(l2.profilers().len(), 2);
        assert_eq!(l2.profilers()[0].num_sets(), 4);
        assert_eq!(l2.profilers()[1].num_sets(), 8);
        assert_eq!(
            l2.profilers()[0].tiers().collect::<Vec<_>>(),
            vec![2, 4],
            "4-set profiler covers both associativities"
        );
    }

    #[test]
    fn result_for_unprofiled_config_is_none() {
        let l2 = MattsonL2::for_configs(&tiny_configs());
        assert!(l2
            .result_for(&CacheConfig::with_sets(16, 2, geometry()))
            .is_none());
        assert!(l2
            .result_for(&CacheConfig::with_sets(4, 3, geometry()))
            .is_none());
    }

    #[test]
    fn primary_outcomes_match_a_direct_baseline() {
        let cfgs = tiny_configs();
        let mut mattson = MattsonL2::for_configs(&cfgs);
        let mut direct = BaselineL2::new(cfgs[0]);
        for i in [1u64, 2, 5, 1, 9, 13, 1, 2, 40, 5] {
            let req = L2Request::data(
                LineAddr::new(i),
                ldis_mem::WordIndex::new((i % 8) as u8),
                i % 3 == 0,
            );
            assert_eq!(
                mattson.access(req).outcome,
                direct.access(req).outcome,
                "line {i}"
            );
        }
        assert_eq!(mattson.stats().accesses, direct.stats().accesses);
        assert_eq!(mattson.stats().loc_hits, direct.stats().loc_hits);
        assert_eq!(mattson.stats().line_misses, direct.stats().line_misses);
        assert_eq!(
            mattson.stats().compulsory_misses,
            direct.stats().compulsory_misses
        );
    }

    #[test]
    fn reports_the_baseline_label_for_seed_replay() {
        let l2 = MattsonL2::for_configs(&tiny_configs());
        assert_eq!(l2.name(), BaselineL2::new(tiny_configs()[0]).name());
    }

    #[test]
    fn reset_stats_preserves_compulsory_classification() {
        let mut l2 = MattsonL2::for_configs(&tiny_configs());
        let req = L2Request::data(LineAddr::new(3), ldis_mem::WordIndex::new(0), false);
        l2.access(req);
        l2.reset_stats();
        assert_eq!(l2.stats().accesses, 0);
        // Thrash line 3 out of every profiled depth, then re-touch it:
        // a miss, but not compulsory (the seen-set survived the reset).
        for i in 0..40u64 {
            l2.access(L2Request::data(
                LineAddr::new(100 + i),
                ldis_mem::WordIndex::new(0),
                false,
            ));
        }
        l2.access(req);
        let r = l2.result_for(&tiny_configs()[0]).expect("profiled");
        assert_eq!(r.compulsory_misses, 40, "line 3 is not compulsory again");
    }

    #[test]
    fn drives_through_the_hierarchy_like_any_second_level() {
        let g = geometry();
        let cfgs = [
            CacheConfig::new(1 << 20, 8, g),
            CacheConfig::new(2 << 20, 8, g),
        ];
        let mut hier = Hierarchy::hpca2007(MattsonL2::for_configs(&cfgs));
        for i in 0..5_000u64 {
            hier.access(Access::load(Addr::new((i * 97 % 300_000) * 8), 8));
        }
        let small = hier.l2().result_for(&cfgs[0]).expect("profiled");
        let large = hier.l2().result_for(&cfgs[1]).expect("profiled");
        assert_eq!(small.accesses, large.accesses);
        assert!(small.line_misses >= large.line_misses);
        assert_eq!(
            small.hits + small.line_misses,
            small.accesses,
            "hits and misses partition accesses"
        );
    }
}
