//! Single-pass Mattson miss-ratio-curve (MRC) profiler.
//!
//! The capacity studies of the paper (Figure 8, Table 5, Table 6) compare
//! the distill cache against *traditional LRU caches of several sizes*.
//! Simulating each size separately repeats the same work: for a fixed line
//! geometry, every traditional configuration of a given set count can be
//! answered from **one** pass over the trace using Mattson's classic
//! stack-distance construction — LRU's inclusion property guarantees that
//! an `A`-way cache holds exactly the `A` most recently used lines of each
//! set, so an access hits in every associativity strictly greater than its
//! per-set stack distance.
//!
//! This crate provides that construction in two layers:
//!
//! * [`MattsonProfiler`] — per-set LRU stacks plus a stack-distance
//!   histogram for one set count, with per-associativity *tier* state
//!   (footprints, evictions, writebacks) so the Table 6 words-used
//!   measurements are reproduced exactly, not just the miss counts;
//! * [`MattsonL2`] — a [`SecondLevel`](ldis_cache::SecondLevel)
//!   organization wrapping one profiler per distinct set count, so the
//!   same `ldis-mem` trace stream that drives a real simulation drives
//!   the profiler through the unmodified L1 hierarchy.
//!
//! A third, *approximate* layer — [`ShardsProfiler`] / [`ShardsL2`] —
//! answers the same capacity queries at a configurable constant memory
//! budget via spatially hashed SHARDS sampling, validated against the
//! exact engine by a bounded-error differential oracle
//! (`tests/mrc_sampled_oracle.rs`; see the [`shards`-module docs] for
//! the algorithm and the per-rate error budgets).
//!
//! [`shards`-module docs]: ShardsProfiler
//!
//! Because the profiler is derived independently from the simulator in
//! `ldis-cache`, it doubles as a *differential oracle*: the test suite
//! asserts its miss counts equal direct [`BaselineL2`](ldis_cache::BaselineL2)
//! simulations bit for bit for every benchmark and size of the quick
//! matrix (`tests/mrc_oracle.rs` at the workspace root).
//!
//! # Example
//!
//! One pass answering three cache sizes at once:
//!
//! ```
//! use ldis_cache::{CacheConfig, Hierarchy, SecondLevel};
//! use ldis_mem::{Access, Addr, LineGeometry};
//! use ldis_mrc::MattsonL2;
//!
//! let g = LineGeometry::default();
//! let configs = [
//!     CacheConfig::new(1 << 20, 8, g),  // 1 MB, 2048 sets
//!     CacheConfig::with_sets(2048, 12, g), // 1.5 MB
//!     CacheConfig::new(2 << 20, 8, g),  // 2 MB, 4096 sets
//! ];
//! let mut hier = Hierarchy::hpca2007(MattsonL2::for_configs(&configs));
//! for i in 0..10_000u64 {
//!     hier.access(Access::load(Addr::new((i % 40_000) * 64), 8));
//! }
//! let small = hier.l2().result_for(&configs[0]).map(|r| r.line_misses);
//! let large = hier.l2().result_for(&configs[2]).map(|r| r.line_misses);
//! assert!(small >= large, "misses are non-increasing in capacity");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l2;
mod profiler;
mod shards;

pub use l2::{ConfigResult, MattsonL2};
pub use profiler::MattsonProfiler;
pub use shards::{
    check_bounded_error, epsilon_miss_ratio, mpki_tolerance, spatial_hash, SampleOutcome,
    SampledMrc, ShardsConfig, ShardsL2, ShardsProfiler, EPSILON_TABLE, SHARDS_MODULUS,
    SHARDS_MODULUS_BITS,
};
