//! SHARDS: constant-memory sampled miss-ratio curves.
//!
//! The exact [`MattsonProfiler`](crate::MattsonProfiler) holds every
//! resident line of every profiled configuration — fine for the quick
//! matrix, unusable against a fleet-scale stream. SHARDS (*Spatially
//! Hashed Approximate Reuse Distance Sampling*, surveyed in the MRC
//! literature this crate follows) profiles only the lines whose spatial
//! hash falls under a threshold `T` of a modulus `P`, giving an effective
//! sampling rate `R = T / P`:
//!
//! * **Spatial hashing** — the hash depends only on the line address, so
//!   *every* reference to a sampled line is profiled and reuse distances
//!   within the sample are exact (in sampled-line units). Scaling a
//!   sampled distance by `1 / R` estimates the unsampled distance.
//! * **Fixed-size operation (`S_max`)** — when the sample set outgrows
//!   its budget, the entry with the *largest* hash is evicted and `T`
//!   drops to that hash. `T` only ever decreases, so an evicted line is
//!   never readmitted: the sample always equals exactly the lines with
//!   `hash < T`, and memory stays `O(S_max)` regardless of trace length.
//! * **`SHARDS_adj`** — with rate adaptation the realized sample count
//!   `N` drifts from the expectation `E = total_refs × R_final`. The
//!   survey's correction adds `E − N` to the distance-0 bucket, which
//!   [`SampledMrc::miss_ratio`] applies when it converts the scaled
//!   histogram into a miss ratio.
//!
//! Reuse distances over the sample are counted with a Fenwick tree over
//! access timestamps (`O(log S_max)` per reference, with periodic
//! timestamp compaction), and accumulated into a bucketed histogram of
//! *scaled* distances so a finished profile answers any bucket-aligned
//! capacity query in `O(capacity / bucket_lines)`.
//!
//! The sampled engine deliberately models a **fully-associative** LRU
//! cache: per-set distances cannot be resolved at rates of 1% when a set
//! holds at most 12 lines. The bounded-error oracle
//! (`tests/mrc_sampled_oracle.rs`) therefore checks the estimate against
//! the exact set-associative Mattson reconstruction within a per-rate
//! tolerance [`epsilon_miss_ratio`] that absorbs both the sampling noise
//! and the (small, for 8–12 ways) associativity modeling bias.

use ldis_cache::{L2Outcome, L2Request, L2Response, L2Stats, SecondLevel};
use ldis_mem::stats::Counter;
use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};
use std::collections::{BTreeMap, BTreeSet};

/// log2 of the spatial-hash modulus `P`.
pub const SHARDS_MODULUS_BITS: u32 = 24;

/// The spatial-hash modulus `P`: [`spatial_hash`] is uniform in `[0, P)`
/// and the sampling rate of a threshold `T` is `T / P`.
pub const SHARDS_MODULUS: u64 = 1 << SHARDS_MODULUS_BITS;

/// The spatial hash of a line: a SplitMix64-style finalizer over the raw
/// line number, reduced to `[0, P)`. Deliberately *seed-independent* —
/// spatial hashing requires that every reference to a given line make the
/// same sampling decision, and it lets two profilers over interleaved
/// streams sample consistent line populations.
pub fn spatial_hash(line: LineAddr) -> u64 {
    let mut z = line.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z & (SHARDS_MODULUS - 1)
}

/// Knobs of a [`ShardsProfiler`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardsConfig {
    /// Target sampling rate `R ∈ (0, 1]`; the initial threshold is
    /// `round(R × P)`.
    pub rate: f64,
    /// Sample-set budget `S_max`: the profiler never tracks more lines
    /// than this, lowering the threshold (and thus the realized rate)
    /// to stay inside it.
    pub s_max: usize,
    /// Width of one histogram bucket in (scaled) lines. Capacity queries
    /// must be multiples of this.
    pub bucket_lines: u64,
    /// Largest scaled distance resolved by the histogram; greater
    /// distances land in the overflow bucket (a miss at every profiled
    /// capacity). Must be a multiple of `bucket_lines`.
    pub max_lines: u64,
}

impl ShardsConfig {
    /// A configuration at sampling rate `rate` with the default budget
    /// (8192 samples), 64-line buckets and 2 Mi-line reach — enough to
    /// resolve capacities up to 128 MB of 64 B lines at 4 KB granularity.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not in `(0, 1]`.
    pub fn at_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0, 1]");
        ShardsConfig {
            rate,
            s_max: 8192,
            bucket_lines: 64,
            max_lines: 1 << 21,
        }
    }

    /// Returns a copy with a different sample-set budget.
    ///
    /// # Panics
    ///
    /// Panics when `s_max` is zero.
    #[must_use]
    pub fn with_sample_budget(mut self, s_max: usize) -> Self {
        assert!(s_max > 0, "sample budget must be positive");
        self.s_max = s_max;
        self
    }

    /// Returns a copy with a different histogram resolution.
    ///
    /// # Panics
    ///
    /// Panics when `bucket_lines` is zero or `max_lines` is not a
    /// positive multiple of `bucket_lines`.
    #[must_use]
    pub fn with_resolution(mut self, bucket_lines: u64, max_lines: u64) -> Self {
        assert!(bucket_lines > 0, "bucket width must be positive");
        assert!(
            max_lines > 0 && max_lines.is_multiple_of(bucket_lines),
            "max_lines must be a positive multiple of bucket_lines"
        );
        self.bucket_lines = bucket_lines;
        self.max_lines = max_lines;
        self
    }

    /// The initial sampling threshold `T = round(R × P)`, clamped to at
    /// least 1 so a positive rate always samples something.
    pub fn initial_threshold(&self) -> u64 {
        let t = (self.rate * SHARDS_MODULUS as f64).round() as u64;
        t.clamp(1, SHARDS_MODULUS)
    }

    /// Number of histogram buckets below the overflow bucket.
    pub fn bucket_count(&self) -> usize {
        (self.max_lines / self.bucket_lines) as usize
    }
}

/// Per-sampled-line state.
#[derive(Clone, Copy, Debug)]
struct SampleSlot {
    /// Timestamp of the last sampled reference (Fenwick index).
    ts: usize,
    /// Words touched while tracked, L1D evictions merged in.
    footprint: Footprint,
    /// Whether the line was brought in by an instruction fetch.
    is_instr: bool,
}

/// A Fenwick (binary indexed) tree counting live sample timestamps, so a
/// reuse distance is `live_entries − prefix(ts)` in `O(log n)`.
#[derive(Clone, Debug)]
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    /// Timestamp capacity.
    fn capacity(&self) -> usize {
        self.tree.len() - 1
    }

    fn add(&mut self, ts: usize, delta: i64) {
        let mut i = ts + 1;
        while i < self.tree.len() {
            if let Some(v) = self.tree.get_mut(i) {
                *v += delta;
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of deltas at timestamps `0..=ts`.
    fn prefix(&self, ts: usize) -> i64 {
        let mut i = (ts + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree.get(i).copied().unwrap_or(0);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// What [`ShardsProfiler::record`] did with a reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The line's hash is at or above the current threshold: not sampled.
    Skipped,
    /// First sampled reference to the line (a cold miss in the sample).
    Cold,
    /// A sampled reuse at the given rate-scaled stack distance.
    Reuse {
        /// The reuse distance scaled by the inverse sampling rate, in
        /// lines — an estimate of the unsampled stack distance.
        scaled_lines: u64,
    },
}

/// The constant-memory SHARDS profiler: a fixed-budget sample set over
/// spatially hashed lines plus a bucketed histogram of scaled reuse
/// distances. See the module docs for the algorithm.
#[derive(Clone, Debug)]
pub struct ShardsProfiler {
    config: ShardsConfig,
    threshold: u64,
    entries: BTreeMap<LineAddr, SampleSlot>,
    /// Secondary index `(hash, line)` for O(log n) max-hash eviction.
    by_hash: BTreeSet<(u64, LineAddr)>,
    fenwick: Fenwick,
    clock: usize,
    /// Bucket `b` counts sampled reuses with scaled distance in
    /// `[b × bucket_lines, (b+1) × bucket_lines)`.
    buckets: Vec<u64>,
    overflow: u64,
    cold: u64,
    total_refs: u64,
    sampled_refs: u64,
    evicted: u64,
    threshold_drops: u64,
    peak_samples: usize,
}

impl ShardsProfiler {
    /// Creates an empty profiler.
    ///
    /// # Panics
    ///
    /// Panics when the configuration violates the invariants documented
    /// on [`ShardsConfig`]'s constructors (non-positive rate, zero
    /// budget, or a histogram reach that is not a multiple of the bucket
    /// width).
    pub fn new(config: ShardsConfig) -> Self {
        assert!(
            config.rate > 0.0 && config.rate <= 1.0,
            "sampling rate must be in (0, 1]"
        );
        assert!(config.s_max > 0, "sample budget must be positive");
        assert!(
            config.bucket_lines > 0
                && config.max_lines > 0
                && config.max_lines.is_multiple_of(config.bucket_lines),
            "max_lines must be a positive multiple of bucket_lines"
        );
        ShardsProfiler {
            config,
            threshold: config.initial_threshold(),
            entries: BTreeMap::new(),
            by_hash: BTreeSet::new(),
            fenwick: Fenwick::new(1024),
            clock: 0,
            buckets: vec![0; config.bucket_count()],
            overflow: 0,
            cold: 0,
            total_refs: 0,
            sampled_refs: 0,
            evicted: 0,
            threshold_drops: 0,
            peak_samples: 0,
        }
    }

    /// Profiles one L2 reference. `word` is the demanded word for data
    /// accesses (`None` for instruction fetches), used only for the
    /// words-used estimate, never for the sampling decision.
    pub fn record(
        &mut self,
        line: LineAddr,
        word: Option<WordIndex>,
        is_instr: bool,
    ) -> SampleOutcome {
        self.total_refs += 1;
        let hash = spatial_hash(line);
        if hash >= self.threshold {
            return SampleOutcome::Skipped;
        }
        self.sampled_refs += 1;
        if self.clock == self.fenwick.capacity() {
            self.compact();
        }
        let now = self.clock;
        self.clock += 1;
        let live = self.entries.len() as i64;
        if let Some(slot) = self.entries.get_mut(&line) {
            let seen = self.fenwick.prefix(slot.ts);
            let distance = (live - seen).max(0) as u64;
            self.fenwick.add(slot.ts, -1);
            self.fenwick.add(now, 1);
            slot.ts = now;
            if let Some(w) = word {
                slot.footprint.touch(w);
            }
            // Scale by the inverse of the *current* rate T/P, in integer
            // arithmetic: distance × P / T (fits u128 comfortably).
            let scaled = ((distance as u128 * SHARDS_MODULUS as u128) / self.threshold as u128)
                .min(u64::MAX as u128) as u64;
            let bucket = (scaled / self.config.bucket_lines) as usize;
            match self.buckets.get_mut(bucket) {
                Some(b) => *b += 1,
                None => self.overflow += 1,
            }
            SampleOutcome::Reuse {
                scaled_lines: scaled,
            }
        } else {
            self.cold += 1;
            let mut footprint = Footprint::empty();
            if let Some(w) = word {
                footprint.touch(w);
            }
            self.entries.insert(
                line,
                SampleSlot {
                    ts: now,
                    footprint,
                    is_instr,
                },
            );
            self.by_hash.insert((hash, line));
            self.fenwick.add(now, 1);
            if self.entries.len() > self.config.s_max {
                self.shrink_to_budget();
            }
            self.peak_samples = self.peak_samples.max(self.entries.len());
            SampleOutcome::Cold
        }
    }

    /// Merges an L1D eviction footprint into the line's sample entry (a
    /// no-op for unsampled lines), mirroring
    /// [`SecondLevel::on_l1d_evict`].
    pub fn merge_l1d_evict(&mut self, line: LineAddr, footprint: Footprint) {
        if let Some(slot) = self.entries.get_mut(&line) {
            slot.footprint.merge(footprint);
        }
    }

    /// Lowers the threshold to the largest tracked hash and drops every
    /// entry at or above it, restoring `len ≤ S_max`. Because the new
    /// threshold equals an evicted hash, no future reference to an
    /// evicted line can be readmitted.
    fn shrink_to_budget(&mut self) {
        while self.entries.len() > self.config.s_max {
            let Some(&(max_hash, _)) = self.by_hash.iter().next_back() else {
                return;
            };
            self.threshold = max_hash;
            self.threshold_drops += 1;
            while let Some(&(hash, line)) = self.by_hash.iter().next_back() {
                if hash < self.threshold {
                    break;
                }
                self.by_hash.remove(&(hash, line));
                if let Some(slot) = self.entries.remove(&line) {
                    self.fenwick.add(slot.ts, -1);
                }
                self.evicted += 1;
            }
        }
    }

    /// Reassigns dense timestamps `0..len` in recency order and resizes
    /// the Fenwick tree, keeping per-reference cost `O(log S_max)`
    /// amortized over unbounded streams.
    fn compact(&mut self) {
        let mut order: Vec<(usize, LineAddr)> =
            self.entries.iter().map(|(l, s)| (s.ts, *l)).collect();
        order.sort_unstable();
        let need = (order.len() * 2).max(1024).next_power_of_two();
        self.fenwick = Fenwick::new(need);
        self.clock = 0;
        for (_, line) in order {
            if let Some(slot) = self.entries.get_mut(&line) {
                slot.ts = self.clock;
                self.fenwick.add(self.clock, 1);
                self.clock += 1;
            }
        }
    }

    /// Zeroes the histogram and reference counters without touching the
    /// sample set or the threshold — the warmup contract: the sample
    /// stays warm, only the measurement restarts.
    pub fn reset_counters(&mut self) {
        for b in &mut self.buckets {
            *b = 0;
        }
        self.overflow = 0;
        self.cold = 0;
        self.total_refs = 0;
        self.sampled_refs = 0;
        self.evicted = 0;
        self.threshold_drops = 0;
        self.peak_samples = self.entries.len();
    }

    /// The configuration the profiler was built with.
    pub fn config(&self) -> &ShardsConfig {
        &self.config
    }

    /// The current sampling threshold `T`.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The current realized sampling rate `T / P` (≤ the configured rate).
    pub fn current_rate(&self) -> f64 {
        self.threshold as f64 / SHARDS_MODULUS as f64
    }

    /// Number of lines currently tracked.
    pub fn sample_len(&self) -> usize {
        self.entries.len()
    }

    /// High-water mark of the sample set (never exceeds `S_max`).
    pub fn peak_samples(&self) -> usize {
        self.peak_samples
    }

    /// Total references offered, sampled or not.
    pub fn total_refs(&self) -> u64 {
        self.total_refs
    }

    /// References that passed the hash filter.
    pub fn sampled_refs(&self) -> u64 {
        self.sampled_refs
    }

    /// Sampled first-touch (cold) references.
    pub fn cold_refs(&self) -> u64 {
        self.cold
    }

    /// Lines evicted by threshold lowering.
    pub fn evicted_lines(&self) -> u64 {
        self.evicted
    }

    /// Number of times the threshold was lowered.
    pub fn threshold_drops(&self) -> u64 {
        self.threshold_drops
    }

    /// The tracked lines in address order (test/diagnostic surface).
    pub fn sample_lines(&self) -> Vec<LineAddr> {
        self.entries.keys().copied().collect()
    }

    /// Mean words used per tracked *data* line — the sampled estimate
    /// behind the advisor's LOC:WOC split. 0 when no data line is
    /// tracked.
    pub fn mean_words_used(&self) -> f64 {
        let mut lines_seen = 0u64;
        let mut words = 0u64;
        for slot in self.entries.values() {
            if !slot.is_instr {
                lines_seen += 1;
                words += u64::from(slot.footprint.used_words());
            }
        }
        if lines_seen == 0 {
            return 0.0;
        }
        words as f64 / lines_seen as f64
    }

    /// Snapshots the profile into a queryable [`SampledMrc`].
    pub fn mrc(&self) -> SampledMrc {
        SampledMrc {
            bucket_lines: self.config.bucket_lines,
            buckets: self.buckets.clone(),
            overflow: self.overflow,
            cold: self.cold,
            total_refs: self.total_refs,
            sampled_refs: self.sampled_refs,
            rate: self.current_rate(),
        }
    }
}

/// A finished sampled miss-ratio curve: the scaled-distance histogram
/// plus the normalization constants needed to answer capacity queries.
/// Fields are public so tests can perturb a snapshot and prove the
/// bounded-error oracle notices (`tests/mrc_sampled_oracle.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct SampledMrc {
    /// Histogram bucket width in lines.
    pub bucket_lines: u64,
    /// Bucket `b` counts scaled reuse distances in
    /// `[b × bucket_lines, (b+1) × bucket_lines)`.
    pub buckets: Vec<u64>,
    /// Reuses beyond the histogram reach (misses at every capacity).
    pub overflow: u64,
    /// Sampled cold (first-touch) references.
    pub cold: u64,
    /// Total references offered to the profiler, sampled or not.
    pub total_refs: u64,
    /// References that passed the hash filter.
    pub sampled_refs: u64,
    /// Final realized sampling rate `T / P`.
    pub rate: f64,
}

impl SampledMrc {
    /// The expected sample count `E = total_refs × R_final`.
    pub fn expected_samples(&self) -> f64 {
        self.total_refs as f64 * self.rate
    }

    /// The `SHARDS_adj` correction `E − N`: the drift between expected
    /// and realized sample counts, credited to the distance-0 bucket.
    pub fn adjustment(&self) -> f64 {
        self.expected_samples() - self.sampled_refs as f64
    }

    /// Estimated miss ratio of a fully-associative LRU cache of
    /// `capacity_lines` lines. `capacity_lines` should be a multiple of
    /// the bucket width; fractional buckets are floored (a conservative,
    /// deterministic rounding).
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        let expected = self.expected_samples();
        if expected <= 0.0 {
            return 1.0;
        }
        let full_buckets = (capacity_lines / self.bucket_lines) as usize;
        let raw_hits: u64 = self.buckets.iter().take(full_buckets).sum();
        // SHARDS_adj: distance-0 mass keeps every bucket prefix honest.
        let hits = raw_hits as f64 + self.adjustment();
        (1.0 - hits / expected).clamp(0.0, 1.0)
    }

    /// Estimated demand MPKI at `capacity_lines`, using the trace's
    /// instruction count for normalization. 0 when `instructions` is 0.
    pub fn estimated_mpki(&self, capacity_lines: u64, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.miss_ratio(capacity_lines) * self.total_refs as f64 * 1000.0 / instructions as f64
    }
}

/// Per-rate error budget of the sampled engine, in miss-ratio units:
/// `(rate, ε)` rows asserted by the bounded-error oracle over the whole
/// quick matrix. Calibrated empirically on the 27-benchmark × 6-size
/// matrix (maximum observed error 0.067 / 0.154 / 0.358, with ≥ 1.5×
/// margin; regenerate with `LDIS_PRINT_ERR=1 cargo test --release --test
/// mrc_sampled_oracle -- --nocapture`); the shape — error growing as the
/// rate shrinks — follows the MRC survey's reported mean-absolute-error
/// trend for SHARDS. The quick config issues only 150 k accesses, so
/// rate 0.001 profiles a few hundred references and needs a loose bound.
pub const EPSILON_TABLE: [(f64, f64); 3] = [(0.1, 0.10), (0.01, 0.24), (0.001, 0.55)];

/// The miss-ratio error budget ε(rate): the table row with the largest
/// rate not exceeding `rate` (the loosest applicable bound below any
/// tabulated rate).
pub fn epsilon_miss_ratio(rate: f64) -> f64 {
    let mut eps = match EPSILON_TABLE.last() {
        Some(&(_, e)) => e,
        None => 1.0,
    };
    for &(r, e) in EPSILON_TABLE.iter() {
        if rate >= r {
            eps = e;
            break;
        }
    }
    eps
}

/// Converts the miss-ratio budget into an MPKI budget for a trace with
/// `l2_accesses` demand references over `instructions` instructions:
/// `ε × 1000 × accesses / instructions` (infinite when the instruction
/// count is zero — nothing to normalize by).
pub fn mpki_tolerance(rate: f64, l2_accesses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        return f64::INFINITY;
    }
    epsilon_miss_ratio(rate) * 1000.0 * l2_accesses as f64 / instructions as f64
}

/// The bounded-error check of the differential oracle: passes when
/// `|sampled − exact| ≤ tolerance` (in MPKI).
///
/// # Errors
///
/// Returns a message naming both values, the absolute error and the
/// budget when the bound is violated (or when either value is NaN).
pub fn check_bounded_error(
    sampled_mpki: f64,
    exact_mpki: f64,
    tolerance_mpki: f64,
) -> Result<(), String> {
    let err = (sampled_mpki - exact_mpki).abs();
    if err <= tolerance_mpki {
        Ok(())
    } else {
        Err(format!(
            "sampled MPKI {sampled_mpki:.4} vs exact {exact_mpki:.4}: \
             |error| {err:.4} exceeds budget {tolerance_mpki:.4}"
        ))
    }
}

/// A [`SecondLevel`] adapter feeding the L2 demand stream into a
/// [`ShardsProfiler`].
///
/// Reports its name as `"baseline"` so [`RunConfig::seed_for`] (in
/// `ldis-experiments`) derives the same per-cell workload seed as a
/// direct baseline or Mattson run — the L1 hierarchy's behavior does not
/// depend on the L2's replies, so the profiler observes the byte-identical
/// request stream the exact engines see. Every access is answered as a
/// nominal line miss with all words valid (the sampler models no concrete
/// capacity).
pub struct ShardsL2 {
    geometry: LineGeometry,
    profiler: ShardsProfiler,
    stats: L2Stats,
}

impl ShardsL2 {
    /// Creates a sampled profiler for `geometry` with the given SHARDS
    /// configuration.
    pub fn new(geometry: LineGeometry, config: ShardsConfig) -> Self {
        ShardsL2 {
            geometry,
            profiler: ShardsProfiler::new(config),
            stats: L2Stats::new(geometry.words_per_line(), 1),
        }
    }

    /// The wrapped profiler.
    pub fn profiler(&self) -> &ShardsProfiler {
        &self.profiler
    }

    /// Snapshots the sampled miss-ratio curve.
    pub fn mrc(&self) -> SampledMrc {
        self.profiler.mrc()
    }
}

impl SecondLevel for ShardsL2 {
    fn access(&mut self, req: L2Request) -> L2Response {
        self.stats.accesses.bump();
        self.stats.line_misses.bump();
        let word = if req.is_instr { None } else { Some(req.word) };
        self.profiler.record(req.line, word, req.is_instr);
        L2Response {
            outcome: L2Outcome::LineMiss,
            valid_words: Footprint::full(self.geometry.words_per_line()),
        }
    }

    fn on_l1d_evict(&mut self, line: LineAddr, footprint: Footprint, _dirty: bool) {
        self.profiler.merge_l1d_evict(line, footprint);
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = L2Stats::new(self.geometry.words_per_line(), 1);
        self.profiler.reset_counters();
    }

    fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    fn name(&self) -> &str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::SimRng;

    fn line(raw_line: u64) -> LineAddr {
        LineAddr::new(raw_line)
    }

    #[test]
    fn spatial_hash_is_uniform_enough_and_in_range() {
        let mut below = 0u64;
        let n = 100_000u64;
        for i in 0..n {
            let h = spatial_hash(line(i));
            assert!(h < SHARDS_MODULUS);
            if h < SHARDS_MODULUS / 10 {
                below += 1;
            }
        }
        // A 10% threshold should catch ~10% of lines (±20% relative).
        assert!((8_000..12_000).contains(&below), "{below}");
    }

    /// At rate 1.0 every line is sampled and scaling is the identity, so
    /// the profiler must reproduce brute-force fully-associative LRU
    /// stack distances exactly.
    #[test]
    fn rate_one_matches_brute_force_lru() {
        let cfg = ShardsConfig::at_rate(1.0)
            .with_sample_budget(1 << 16)
            .with_resolution(1, 1 << 12);
        let mut p = ShardsProfiler::new(cfg);
        let mut rng = SimRng::new(0xD15);
        let mut stack: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            let l = rng.range(400);
            let expect = stack.iter().rev().position(|&x| x == l);
            match expect {
                Some(d) => {
                    let got = p.record(line(l), None, false);
                    assert_eq!(
                        got,
                        SampleOutcome::Reuse {
                            scaled_lines: d as u64
                        }
                    );
                    let pos = stack.len() - 1 - d;
                    stack.remove(pos);
                }
                None => {
                    assert_eq!(p.record(line(l), None, false), SampleOutcome::Cold);
                }
            }
            stack.push(l);
        }
        // With distance-1 buckets the histogram is the exact distance
        // distribution; the adjustment is 0 at rate 1.0.
        let mrc = p.mrc();
        assert_eq!(mrc.sampled_refs, mrc.total_refs);
        assert!(mrc.adjustment().abs() < 1e-9);
    }

    #[test]
    fn budget_is_enforced_and_threshold_only_drops() {
        let cfg = ShardsConfig::at_rate(1.0).with_sample_budget(32);
        let mut p = ShardsProfiler::new(cfg);
        let mut last_threshold = p.threshold();
        for i in 0..10_000u64 {
            p.record(line(i), None, false);
            assert!(p.sample_len() <= 32, "budget exceeded at line {i}");
            assert!(p.threshold() <= last_threshold, "threshold rose");
            last_threshold = p.threshold();
        }
        assert!(p.peak_samples() <= 32);
        assert!(p.threshold() < SHARDS_MODULUS, "threshold never adapted");
        assert!(p.evicted_lines() > 0);
        // Everything still tracked hashes below the final threshold.
        for l in p.sample_lines() {
            assert!(spatial_hash(l) < p.threshold());
        }
    }

    #[test]
    fn miss_ratio_is_monotone_in_capacity_and_clamped() {
        let cfg = ShardsConfig::at_rate(0.5).with_sample_budget(4096);
        let mut p = ShardsProfiler::new(cfg);
        let mut rng = SimRng::new(7);
        for _ in 0..50_000 {
            let l = rng.range(3000);
            p.record(line(l), None, false);
        }
        let mrc = p.mrc();
        let mut prev = 1.0f64;
        for lines_cap in (0..=4096).step_by(64) {
            let m = mrc.miss_ratio(lines_cap as u64);
            assert!((0.0..=1.0).contains(&m));
            assert!(m <= prev + 1e-12, "miss ratio rose at {lines_cap}");
            prev = m;
        }
    }

    #[test]
    fn warmup_reset_keeps_the_sample_warm() {
        let cfg = ShardsConfig::at_rate(1.0).with_sample_budget(64);
        let mut p = ShardsProfiler::new(cfg);
        for i in 0..200u64 {
            p.record(line(i % 40), None, false);
        }
        let len = p.sample_len();
        let threshold = p.threshold();
        p.reset_counters();
        assert_eq!(p.total_refs(), 0);
        assert_eq!(p.sample_len(), len);
        assert_eq!(p.threshold(), threshold);
        // Re-referencing a warm line is a reuse, not a cold miss.
        assert!(matches!(
            p.record(line(5), None, false),
            SampleOutcome::Reuse { .. }
        ));
    }

    #[test]
    fn timestamp_compaction_preserves_distances() {
        // A tiny initial Fenwick capacity (1024) forces many compactions
        // over 50k sampled refs; distances must stay exact vs brute force.
        let cfg = ShardsConfig::at_rate(1.0)
            .with_sample_budget(1 << 16)
            .with_resolution(1, 1 << 12);
        let mut p = ShardsProfiler::new(cfg);
        let mut rng = SimRng::new(99);
        let mut stack: Vec<u64> = Vec::new();
        for _ in 0..50_000 {
            let l = rng.range(64);
            if let Some(d) = stack.iter().rev().position(|&x| x == l) {
                let got = p.record(line(l), None, false);
                assert_eq!(
                    got,
                    SampleOutcome::Reuse {
                        scaled_lines: d as u64
                    }
                );
                let pos = stack.len() - 1 - d;
                stack.remove(pos);
            } else {
                p.record(line(l), None, false);
            }
            stack.push(l);
        }
    }

    #[test]
    fn epsilon_table_lookup_is_piecewise_by_rate() {
        assert_eq!(epsilon_miss_ratio(0.1), EPSILON_TABLE[0].1);
        assert_eq!(epsilon_miss_ratio(0.5), EPSILON_TABLE[0].1);
        assert_eq!(epsilon_miss_ratio(0.01), EPSILON_TABLE[1].1);
        assert_eq!(epsilon_miss_ratio(0.05), EPSILON_TABLE[1].1);
        assert_eq!(epsilon_miss_ratio(0.001), EPSILON_TABLE[2].1);
        assert_eq!(epsilon_miss_ratio(0.0001), EPSILON_TABLE[2].1);
    }

    #[test]
    fn bounded_error_check_passes_and_fails() {
        assert!(check_bounded_error(10.0, 10.5, 1.0).is_ok());
        let err = check_bounded_error(10.0, 12.0, 1.0).unwrap_err();
        assert!(err.contains("exceeds budget"), "{err}");
    }

    #[test]
    fn mean_words_used_tracks_data_footprints() {
        let cfg = ShardsConfig::at_rate(1.0);
        let mut p = ShardsProfiler::new(cfg);
        p.record(line(1), Some(WordIndex::new(0)), false);
        p.record(line(1), Some(WordIndex::new(1)), false);
        p.record(line(2), Some(WordIndex::new(3)), false);
        p.record(line(3), None, true); // instruction line: excluded
        assert!((p.mean_words_used() - 1.5).abs() < 1e-12);
        let mut fp = Footprint::empty();
        fp.touch(WordIndex::new(2));
        p.merge_l1d_evict(line(2), fp);
        assert!((p.mean_words_used() - 2.0).abs() < 1e-12);
    }
}
