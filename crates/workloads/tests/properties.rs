//! Property tests for the workload generators.

use ldis_mem::{AccessKind, TraceSource};
use ldis_workloads::{
    cache_insensitive, memory_intensive, HotSet, PointerChase, SequentialScan, TraceLength,
    Workload, WordsProfile,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every workload is deterministic per seed and produces word-aligned
    /// accesses with positive instruction gaps.
    #[test]
    fn workloads_are_deterministic_and_well_formed(seed in any::<u64>(), pick in 0usize..16) {
        let bench = memory_intensive()[pick];
        let t1 = (bench.make)(seed).record(400);
        let t2 = (bench.make)(seed).record(400);
        prop_assert_eq!(t1.accesses(), t2.accesses());
        for a in t1.accesses() {
            if a.kind != AccessKind::InstrFetch {
                prop_assert_eq!(a.addr.raw() % 8, 0, "{} misaligned", bench.name);
            }
            prop_assert!(a.insts >= 1);
            prop_assert!(a.size >= 1 && a.size <= 8);
        }
    }

    /// Streams never leave their declared regions.
    #[test]
    fn streams_stay_in_their_regions(base in 0u64..1_000_000, lines in 1u64..5_000) {
        let mut w = Workload::builder("bounded", 3)
            .stream(1.0, HotSet::new(base, lines, WordsProfile::mixed(), 1))
            .build();
        for _ in 0..500 {
            let a = w.next_access().unwrap();
            let line = a.addr.raw() / 64;
            prop_assert!((base..base + lines).contains(&line));
        }
    }

    /// A pointer chase visits all nodes before repeating any (single cycle),
    /// regardless of seed.
    #[test]
    fn chase_is_a_permutation_cycle(seed in any::<u64>(), nodes in 2u64..256) {
        let mut chase = PointerChase::new(0, nodes, WordsProfile::exactly(1), 0, seed);
        let mut rng = ldis_mem::SimRng::new(1);
        let mut seen = std::collections::HashSet::new();
        use ldis_workloads::Stream;
        for _ in 0..nodes {
            prop_assert!(seen.insert(chase.next_visit(&mut rng).line));
        }
        prop_assert_eq!(seen.len() as u64, nodes);
    }

    /// Sampled words-used average tracks the profile's analytic mean for
    /// any valid weight vector.
    #[test]
    fn profile_mean_matches_samples(weights in prop::collection::vec(0.0f64..10.0, 8..9)) {
        let arr: [f64; 8] = weights.clone().try_into().unwrap();
        prop_assume!(arr.iter().sum::<f64>() > 0.5);
        let profile = WordsProfile::new(arr);
        let n = 4000u64;
        let sum: u64 = (0..n)
            .map(|i| profile.words_for(ldis_mem::LineAddr::new(i), 1) as u64)
            .sum();
        let sampled = sum as f64 / n as f64;
        prop_assert!(
            (sampled - profile.mean()).abs() < 0.25,
            "sampled {sampled} vs analytic {}",
            profile.mean()
        );
    }

    /// Wrapping scans repeat with a period of exactly `lines` visits.
    #[test]
    fn scan_period_is_lines(lines in 1u64..500) {
        use ldis_workloads::Stream;
        let mut s = SequentialScan::new(7, lines, WordsProfile::exactly(1), 0, true);
        let mut rng = ldis_mem::SimRng::new(1);
        let first: Vec<u64> = (0..lines).map(|_| s.next_visit(&mut rng).line.raw()).collect();
        let second: Vec<u64> = (0..lines).map(|_| s.next_visit(&mut rng).line.raw()).collect();
        prop_assert_eq!(first, second);
    }
}

/// Every model in both suites keeps generating indefinitely (no stream
/// runs dry or panics deep into a run).
#[test]
fn all_models_generate_long_runs() {
    for b in memory_intensive().into_iter().chain(cache_insensitive()) {
        let mut w = (b.make)(99);
        for i in 0..20_000 {
            assert!(w.next_access().is_some(), "{} dried up at {i}", b.name);
        }
    }
}

/// `TraceLength::instructions` runs at least that many instructions.
#[test]
fn instruction_budget_is_met() {
    use ldis_cache::{BaselineL2, CacheConfig, Hierarchy};
    let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, Default::default()));
    let mut hier = Hierarchy::hpca2007(l2);
    let w = memory_intensive()[5].make;
    w(1).drive(&mut hier, TraceLength::instructions(100_000));
    assert!(hier.stats().instructions >= 100_000);
}
