//! Property tests for the workload generators, driven by a deterministic
//! seeded generator (`SimRng`) so every run explores the same cases and
//! failures reproduce exactly.

use ldis_mem::{AccessKind, SimRng, TraceSource};
use ldis_workloads::{
    cache_insensitive, memory_intensive, HotSet, PointerChase, SequentialScan, Stream, TraceLength,
    WordsProfile, Workload,
};

/// Every workload is deterministic per seed and produces word-aligned
/// accesses with positive instruction gaps.
#[test]
fn workloads_are_deterministic_and_well_formed() {
    let mut rng = SimRng::new(0x3011);
    for case in 0..16 {
        let seed = rng.next_u64();
        let bench = memory_intensive()[case % 16];
        let t1 = (bench.make)(seed).record(400);
        let t2 = (bench.make)(seed).record(400);
        assert_eq!(t1.accesses(), t2.accesses(), "case {case}");
        for a in t1.accesses() {
            if a.kind != AccessKind::InstrFetch {
                assert_eq!(
                    a.addr.raw() % 8,
                    0,
                    "case {case}: {} misaligned",
                    bench.name
                );
            }
            assert!(a.insts >= 1, "case {case}");
            assert!(a.size >= 1 && a.size <= 8, "case {case}");
        }
    }
}

/// Streams never leave their declared regions.
#[test]
fn streams_stay_in_their_regions() {
    let mut rng = SimRng::new(0x3012);
    for case in 0..20 {
        let base = rng.range(1_000_000);
        let lines = 1 + rng.range(4_999);
        let mut w = Workload::builder("bounded", 3)
            .stream(1.0, HotSet::new(base, lines, WordsProfile::mixed(), 1))
            .build();
        for _ in 0..500 {
            let a = w.next_access().expect("workload streams are endless");
            let line = a.addr.raw() / 64;
            assert!((base..base + lines).contains(&line), "case {case}");
        }
    }
}

/// A pointer chase visits all nodes before repeating any (single cycle),
/// regardless of seed.
#[test]
fn chase_is_a_permutation_cycle() {
    let mut meta = SimRng::new(0x3013);
    for case in 0..30 {
        let seed = meta.next_u64();
        let nodes = 2 + meta.range(254);
        let mut chase = PointerChase::new(0, nodes, WordsProfile::exactly(1), 0, seed);
        let mut rng = SimRng::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..nodes {
            assert!(seen.insert(chase.next_visit(&mut rng).line), "case {case}");
        }
        assert_eq!(seen.len() as u64, nodes, "case {case}");
    }
}

/// Sampled words-used average tracks the profile's analytic mean for
/// any valid weight vector.
#[test]
fn profile_mean_matches_samples() {
    let mut rng = SimRng::new(0x3014);
    for case in 0..30 {
        let mut arr = [0.0f64; 8];
        for slot in arr.iter_mut() {
            *slot = rng.f64() * 10.0;
        }
        if arr.iter().sum::<f64>() <= 0.5 {
            continue;
        }
        let profile = WordsProfile::new(arr);
        let n = 4000u64;
        let sum: u64 = (0..n)
            .map(|i| profile.words_for(ldis_mem::LineAddr::new(i), 1) as u64)
            .sum();
        let sampled = sum as f64 / n as f64;
        assert!(
            (sampled - profile.mean()).abs() < 0.25,
            "case {case}: sampled {sampled} vs analytic {}",
            profile.mean()
        );
    }
}

/// Wrapping scans repeat with a period of exactly `lines` visits.
#[test]
fn scan_period_is_lines() {
    let mut meta = SimRng::new(0x3015);
    for case in 0..30 {
        let lines = 1 + meta.range(499);
        let mut s = SequentialScan::new(7, lines, WordsProfile::exactly(1), 0, true);
        let mut rng = SimRng::new(1);
        let first: Vec<u64> = (0..lines)
            .map(|_| s.next_visit(&mut rng).line.raw())
            .collect();
        let second: Vec<u64> = (0..lines)
            .map(|_| s.next_visit(&mut rng).line.raw())
            .collect();
        assert_eq!(first, second, "case {case}");
    }
}

/// Every model in both suites keeps generating indefinitely (no stream
/// runs dry or panics deep into a run).
#[test]
fn all_models_generate_long_runs() {
    for b in memory_intensive().into_iter().chain(cache_insensitive()) {
        let mut w = (b.make)(99);
        for i in 0..20_000 {
            assert!(w.next_access().is_some(), "{} dried up at {i}", b.name);
        }
    }
}

/// `TraceLength::instructions` runs at least that many instructions.
#[test]
fn instruction_budget_is_met() {
    use ldis_cache::{BaselineL2, CacheConfig, Hierarchy};
    let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, Default::default()));
    let mut hier = Hierarchy::hpca2007(l2);
    let w = memory_intensive()[5].make;
    w(1).drive(&mut hier, TraceLength::instructions(100_000));
    assert!(hier.stats().instructions >= 100_000);
}
