//! The workload driver: interleaves streams into a memory-access trace.

use crate::{Stream, ValueProfile, VisitKind};
use ldis_cache::{Hierarchy, SecondLevel};
use ldis_mem::{Access, AccessKind, Addr, LineGeometry, SimRng, Trace, TraceSource};
use std::collections::VecDeque;

/// How long to run a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceLength {
    /// A fixed number of memory accesses.
    Accesses(u64),
    /// Until at least this many instructions have been represented.
    Instructions(u64),
}

impl TraceLength {
    /// A length of `n` memory accesses.
    pub const fn accesses(n: u64) -> Self {
        TraceLength::Accesses(n)
    }

    /// A length of at least `n` instructions.
    pub const fn instructions(n: u64) -> Self {
        TraceLength::Instructions(n)
    }
}

/// A synthetic benchmark: a weighted interleaving of [`Stream`]s plus the
/// scalar knobs that set its miss rate, store mix and instruction density.
///
/// Implements [`TraceSource`], so it can drive a
/// [`Hierarchy`](ldis_cache::Hierarchy) directly or be recorded into a
/// [`Trace`] for identical replay across cache configurations.
///
/// # Example
///
/// ```
/// use ldis_workloads::{Workload, PointerChase, WordsProfile};
/// use ldis_mem::TraceSource;
///
/// let mut w = Workload::builder("demo", 42)
///     .stream(1.0, PointerChase::new(0, 512, WordsProfile::sparse(), 1, 42))
///     .inst_gap(5.0)
///     .build();
/// let a = w.next_access().expect("workloads are endless");
/// assert!(a.insts >= 1);
/// ```
pub struct Workload {
    name: String,
    streams: Vec<Box<dyn Stream>>,
    weights: Vec<f64>,
    rng: SimRng,
    geometry: LineGeometry,
    inst_gap: f64,
    store_frac: f64,
    values: ValueProfile,
    queue: VecDeque<Access>,
    pcs_per_stream: u64,
    /// Precomputed `weights.iter().sum()` — the same f64 the per-call sum
    /// would produce, hoisted out of the per-visit hot path.
    weight_total: f64,
    /// Precomputed geometric-draw denominator for `inst_gap` (`None` when
    /// the gap degenerates to a constant 1 and no draw is consumed).
    gap_denom: Option<f64>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("streams", &self.streams.len())
            .field("inst_gap", &self.inst_gap)
            .field("store_frac", &self.store_frac)
            .finish_non_exhaustive()
    }
}

/// Builder for [`Workload`]; created by [`Workload::builder`].
pub struct WorkloadBuilder {
    name: String,
    seed: u64,
    streams: Vec<Box<dyn Stream>>,
    weights: Vec<f64>,
    geometry: LineGeometry,
    inst_gap: f64,
    store_frac: f64,
    values: ValueProfile,
}

impl Workload {
    /// Starts building a workload with a name and a seed. All randomness —
    /// stream interleaving, instruction gaps, store selection — derives
    /// from the seed, so equal seeds give identical traces.
    pub fn builder(name: impl Into<String>, seed: u64) -> WorkloadBuilder {
        WorkloadBuilder {
            name: name.into(),
            seed,
            streams: Vec::new(),
            weights: Vec::new(),
            geometry: LineGeometry::default(),
            inst_gap: 10.0,
            store_frac: 0.25,
            values: ValueProfile::mixed_int(),
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value model for compression experiments.
    pub fn values(&self) -> ValueProfile {
        self.values
    }

    /// The line/word geometry accesses are generated against.
    pub fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    /// How many accesses [`drive`](Workload::drive) generates per block
    /// before handing the block to the hierarchy.
    pub const DRIVE_BLOCK: usize = 512;

    /// Runs `length` of this workload through a cache hierarchy.
    ///
    /// In `Accesses` mode the trace is generated in blocks of
    /// [`DRIVE_BLOCK`](Workload::DRIVE_BLOCK) accesses into a reusable
    /// buffer and then simulated, so generation and simulation each run
    /// over warm state instead of ping-ponging per access. The generated
    /// trace is identical to per-access generation (the block boundary
    /// only changes *when* accesses are produced, not which).
    pub fn drive<L2: SecondLevel>(&mut self, hier: &mut Hierarchy<L2>, length: TraceLength) {
        match length {
            TraceLength::Accesses(n) => {
                let mut buf = Vec::with_capacity(Self::DRIVE_BLOCK);
                let mut remaining = n;
                while remaining > 0 {
                    let take = remaining.min(Self::DRIVE_BLOCK as u64) as usize;
                    self.fill_block(&mut buf, take);
                    for &a in buf.iter() {
                        hier.access(a);
                    }
                    remaining -= take as u64;
                }
            }
            TraceLength::Instructions(n) => {
                let start = hier.stats().instructions;
                while hier.stats().instructions - start < n {
                    let a = self.generate();
                    hier.access(a);
                }
            }
        }
    }

    /// Records `n` accesses into a replayable [`Trace`].
    pub fn record(&mut self, n: usize) -> Trace {
        Trace::record(self, n)
    }

    fn generate(&mut self) -> Access {
        loop {
            if let Some(a) = self.queue.pop_front() {
                return a;
            }
            self.refill();
        }
    }

    /// Clears `buf` and fills it with exactly `n` freshly generated
    /// accesses, in the same order [`generate`](Workload::generate) would
    /// return them one by one. Fresh visits are generated straight into
    /// `buf` — the queue only carries a visit tail across block boundaries.
    pub fn fill_block(&mut self, buf: &mut Vec<Access>, n: usize) {
        buf.clear();
        // Drain any visit tail left over from an earlier block boundary.
        while buf.len() < n {
            match self.queue.pop_front() {
                Some(a) => buf.push(a),
                None => break,
            }
        }
        // Generate the rest directly into the buffer — no queue round-trip.
        while buf.len() < n {
            self.refill_into(buf);
        }
        // The last visit may overshoot the block; its tail waits (in order)
        // for the next block. The queue is empty here, so `extend` keeps
        // the generated order.
        if buf.len() > n {
            self.queue.extend(buf.drain(n..));
        }
    }

    /// One instruction-gap draw; bit-identical to
    /// `rng.geometric(self.inst_gap)` with the log denominator hoisted.
    #[inline]
    fn next_gap(&mut self) -> u32 {
        match self.gap_denom {
            None => 1,
            Some(denom) => self.rng.geometric_with_denom(denom),
        }
    }

    fn refill(&mut self) {
        // Detach the queue so `refill_into` can borrow the rest of `self`.
        let mut q = std::mem::take(&mut self.queue);
        self.refill_into(&mut q);
        self.queue = q;
    }

    /// Generates one stream visit's accesses, appending them to `out`. The
    /// RNG draw sequence is independent of the sink, so filling a block
    /// buffer directly and filling the queue produce identical traces.
    fn refill_into(&mut self, out: &mut impl AccessSink) {
        let idx = if self.streams.len() == 1 {
            0
        } else {
            self.rng
                .weighted_index_with_total(&self.weights, self.weight_total)
        };
        let visit = {
            let rng = &mut self.rng;
            // `weighted_index` returns an index < streams.len().
            match self.streams.get_mut(idx) {
                Some(stream) => stream.next_visit(rng),
                None => return,
            }
        };
        let geom = self.geometry;
        match visit.kind {
            VisitKind::Instr => {
                let addr = geom.line_base(visit.line);
                let insts = self.next_gap();
                out.push_access(Access::ifetch(addr).with_insts(insts));
            }
            VisitKind::Data => {
                // One access per touched word; the PC is stable per
                // (stream, line) so the spatial footprint predictor has
                // something to learn.
                let pc_base = 0x0040_0000 + (idx as u64) * 0x1_0000;
                let pc_slot = (visit.line.raw() ^ visit.line.raw() >> 7) % self.pcs_per_stream;
                let pc = Addr::new(pc_base + pc_slot * 4);
                for word in visit.words.iter_used() {
                    let kind = if self.rng.chance(self.store_frac) {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let a = Access {
                        addr: geom.word_base(visit.line, word),
                        // ldis: allow(T1, "every workload geometry uses 4- or 8-byte words")
                        size: geom.word_bytes() as u8,
                        kind,
                        insts: self.next_gap(),
                        pc,
                    };
                    out.push_access(a);
                }
            }
        }
    }
}

/// An append-only destination for generated accesses — lets
/// [`Workload::refill_into`] target either the cross-block queue or a
/// caller's block buffer with the same code path.
trait AccessSink {
    fn push_access(&mut self, a: Access);
}

impl AccessSink for Vec<Access> {
    #[inline]
    fn push_access(&mut self, a: Access) {
        self.push(a);
    }
}

impl AccessSink for VecDeque<Access> {
    #[inline]
    fn push_access(&mut self, a: Access) {
        self.push_back(a);
    }
}

impl TraceSource for Workload {
    fn next_access(&mut self) -> Option<Access> {
        Some(self.generate())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl WorkloadBuilder {
    /// Adds a stream with a relative interleaving weight.
    pub fn stream(mut self, weight: f64, stream: impl Stream + 'static) -> Self {
        assert!(weight > 0.0, "stream weight must be positive");
        self.weights.push(weight);
        self.streams.push(Box::new(stream));
        self
    }

    /// Sets the mean instructions per memory access (controls MPKI scale).
    pub fn inst_gap(mut self, gap: f64) -> Self {
        assert!(gap >= 1.0, "gap must be at least one instruction");
        self.inst_gap = gap;
        self
    }

    /// Sets the fraction of data accesses that are stores.
    pub fn store_fraction(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "fraction must be in [0, 1]");
        self.store_frac = frac;
        self
    }

    /// Sets the value model used by the compression experiments.
    pub fn values(mut self, values: ValueProfile) -> Self {
        self.values = values;
        self
    }

    /// Overrides the line/word geometry (default 64 B / 8 B).
    pub fn geometry(mut self, geometry: LineGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if no stream was added.
    pub fn build(self) -> Workload {
        assert!(
            !self.streams.is_empty(),
            "a workload needs at least one stream"
        );
        let weight_total: f64 = self.weights.iter().sum();
        let gap_denom = SimRng::geometric_denom(self.inst_gap);
        Workload {
            name: self.name,
            streams: self.streams,
            weights: self.weights,
            rng: SimRng::new(self.seed),
            geometry: self.geometry,
            inst_gap: self.inst_gap,
            store_frac: self.store_frac,
            values: self.values,
            queue: VecDeque::new(),
            pcs_per_stream: 8,
            weight_total,
            gap_denom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HotSet, PointerChase, SequentialScan, WordsProfile};
    use ldis_cache::{BaselineL2, CacheConfig};

    fn simple(seed: u64) -> Workload {
        Workload::builder("test", seed)
            .stream(1.0, HotSet::new(0, 64, WordsProfile::mixed(), 1))
            .stream(
                2.0,
                SequentialScan::new(10_000, 256, WordsProfile::exactly(8), 2, true),
            )
            .inst_gap(4.0)
            .store_fraction(0.3)
            .build()
    }

    #[test]
    fn same_seed_same_trace() {
        let t1 = simple(9).record(2000);
        let t2 = simple(9).record(2000);
        assert_eq!(t1.accesses(), t2.accesses());
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = simple(1).record(500);
        let t2 = simple(2).record(500);
        assert_ne!(t1.accesses(), t2.accesses());
    }

    #[test]
    fn accesses_are_word_aligned_and_sized() {
        let t = simple(3).record(1000);
        for a in t.accesses() {
            assert_eq!(a.addr.raw() % 8, 0);
            assert_eq!(a.size, 8);
            assert!(a.insts >= 1);
        }
    }

    #[test]
    fn store_fraction_is_respected() {
        let t = simple(5).record(10_000);
        let stores = t
            .accesses()
            .iter()
            .filter(|a| a.kind == AccessKind::Store)
            .count();
        let frac = stores as f64 / t.len() as f64;
        assert!((0.25..0.35).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn inst_gap_sets_instruction_density() {
        let t = simple(7).record(10_000);
        let per_access = t.instructions() as f64 / t.len() as f64;
        assert!((3.5..4.5).contains(&per_access), "gap {per_access}");
    }

    #[test]
    fn drive_runs_through_hierarchy() {
        let mut w = simple(11);
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, Default::default()));
        let mut hier = Hierarchy::hpca2007(l2);
        w.drive(&mut hier, TraceLength::accesses(5_000));
        assert_eq!(hier.stats().l1d_accesses + hier.stats().l1i_accesses, 5_000);
        let mut w2 = simple(12);
        let before = hier.stats().instructions;
        w2.drive(&mut hier, TraceLength::instructions(10_000));
        assert!(hier.stats().instructions - before >= 10_000);
    }

    #[test]
    fn pc_is_stable_per_line() {
        let mut w = Workload::builder("pc", 1)
            .stream(
                1.0,
                PointerChase::new(0, 32, WordsProfile::exactly(1), 0, 1),
            )
            .build();
        let t = w.record(64);
        let mut pcs = std::collections::BTreeMap::new();
        for a in t.accesses() {
            let line = a.addr.raw() / 64;
            let pc = pcs.entry(line).or_insert(a.pc);
            assert_eq!(*pc, a.pc, "line {line} must keep its PC");
        }
    }

    #[test]
    fn fill_block_matches_per_access_generation() {
        let mut blocked_src = simple(21);
        let mut serial_src = simple(21);
        let mut buf = Vec::new();
        let mut blocked = Vec::new();
        // Odd block sizes exercise visits split across block boundaries.
        for n in [1usize, 3, 512, 100, 7] {
            blocked_src.fill_block(&mut buf, n);
            assert_eq!(buf.len(), n);
            blocked.extend(buf.iter().copied());
        }
        let serial: Vec<_> = (0..blocked.len()).map(|_| serial_src.generate()).collect();
        assert_eq!(blocked, serial, "blocking must not change the trace");
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_workload_rejected() {
        let _ = Workload::builder("empty", 0).build();
    }
}
