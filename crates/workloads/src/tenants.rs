//! Multi-tenant interleaved access streams.
//!
//! The online cache advisor (`ldis-experiments::advisor`) consumes a
//! *tagged* stream: every access carries the tenant that issued it, so
//! per-tenant sampled MRC profilers can be maintained over one shared
//! arrival order. [`TenantMix`] produces that stream by weighted
//! interleaving of per-tenant [`Workload`]s, with each tenant relocated
//! into a disjoint address region so tenants never alias lines.
//!
//! All randomness — the tenant picked per step and each tenant's own
//! stream — derives from the mix seed, so equal seeds give identical
//! tagged traces (the advisor golden depends on this).

use crate::{Benchmark, Workload};
use ldis_mem::{Access, Addr, SimRng, TraceSource};

/// Address-space stride separating tenants: 16 TiB per tenant keeps every
/// workload's regions disjoint across tenants without nearing u64 wrap.
const TENANT_STRIDE: u64 = 1 << 44;

/// One access of the interleaved stream, tagged with its issuing tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantAccess {
    /// Index of the issuing tenant (see [`TenantMix::tenant_name`]).
    pub tenant: usize,
    /// The access, relocated into the tenant's private address region.
    pub access: Access,
}

struct Tenant {
    name: String,
    weight: f64,
    workload: Workload,
}

/// Builder for [`TenantMix`]; created by [`TenantMix::builder`].
pub struct TenantMixBuilder {
    seed: u64,
    tenants: Vec<Tenant>,
}

impl TenantMixBuilder {
    /// Adds a tenant running `workload` with the given scheduling
    /// `weight` (relative share of the interleaved stream).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not positive.
    #[must_use]
    pub fn tenant(mut self, name: impl Into<String>, weight: f64, workload: Workload) -> Self {
        assert!(weight > 0.0, "tenant weight must be positive");
        self.tenants.push(Tenant {
            name: name.into(),
            weight,
            workload,
        });
        self
    }

    /// Adds a tenant running `benchmark`, seeded deterministically from
    /// the mix seed, the benchmark's stable id and the tenant's position
    /// in the mix — so reordering tenants or changing the mix seed
    /// re-rolls the stream, but rebuilding the same mix replays it.
    #[must_use]
    pub fn benchmark(self, weight: f64, benchmark: &Benchmark) -> Self {
        let slot = self.tenants.len() as u64;
        let seed = SimRng::derive_seed_chain(self.seed, &[u64::from(benchmark.id), slot]);
        self.tenant(benchmark.name, weight, (benchmark.make)(seed))
    }

    /// Finishes the mix.
    ///
    /// # Panics
    ///
    /// Panics when no tenant was added.
    pub fn build(self) -> TenantMix {
        assert!(!self.tenants.is_empty(), "a tenant mix needs tenants");
        let weights = self.tenants.iter().map(|t| t.weight).collect();
        TenantMix {
            tenants: self.tenants,
            weights,
            rng: SimRng::new(SimRng::derive_seed_chain(self.seed, &[0x7e4a])),
        }
    }
}

/// A deterministic weighted interleaving of named tenant workloads. See
/// the module docs.
pub struct TenantMix {
    tenants: Vec<Tenant>,
    weights: Vec<f64>,
    rng: SimRng,
}

impl TenantMix {
    /// Starts building a mix; all randomness derives from `seed`.
    pub fn builder(seed: u64) -> TenantMixBuilder {
        TenantMixBuilder {
            seed,
            tenants: Vec::new(),
        }
    }

    /// Number of tenants in the mix.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The name of tenant `index`, if it exists.
    pub fn tenant_name(&self, index: usize) -> Option<&str> {
        self.tenants.get(index).map(|t| t.name.as_str())
    }

    /// Produces the next tagged access: a weighted pick of the issuing
    /// tenant, that tenant's next access, relocated into its private
    /// region.
    pub fn next_tenant_access(&mut self) -> TenantAccess {
        let tenant = self.rng.weighted_index(&self.weights);
        let base = tenant as u64 * TENANT_STRIDE;
        let access = match self.tenants.get_mut(tenant) {
            Some(t) => t.workload.next_access(),
            None => None,
        };
        // Workloads are endless; the fallback keeps the stream total
        // (and this function panic-free) if that ever changes.
        let mut access = access.unwrap_or_else(|| Access::load(Addr::new(0), 8));
        access.addr = Addr::new(base.wrapping_add(access.addr.raw()));
        access.pc = Addr::new(base.wrapping_add(access.pc.raw()));
        TenantAccess { tenant, access }
    }
}

impl std::fmt::Debug for TenantMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantMix")
            .field("tenants", &self.tenants.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    fn two_tenant_mix(seed: u64) -> TenantMix {
        let benches = spec2000::memory_intensive();
        let art = benches.iter().find(|b| b.name == "art").expect("art");
        let mcf = benches.iter().find(|b| b.name == "mcf").expect("mcf");
        TenantMix::builder(seed)
            .benchmark(3.0, art)
            .benchmark(1.0, mcf)
            .build()
    }

    #[test]
    fn equal_seeds_replay_identical_tagged_streams() {
        let mut a = two_tenant_mix(42);
        let mut b = two_tenant_mix(42);
        for _ in 0..5_000 {
            assert_eq!(a.next_tenant_access(), b.next_tenant_access());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = two_tenant_mix(42);
        let mut b = two_tenant_mix(43);
        let differs = (0..1_000).any(|_| a.next_tenant_access() != b.next_tenant_access());
        assert!(differs);
    }

    #[test]
    fn weights_bias_the_schedule() {
        let mut m = two_tenant_mix(7);
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            let t = m.next_tenant_access();
            if let Some(c) = counts.get_mut(t.tenant) {
                *c += 1;
            }
        }
        // 3:1 weights: tenant 0 should clearly dominate.
        assert!(counts[0] > counts[1] * 2, "{counts:?}");
    }

    #[test]
    fn tenants_occupy_disjoint_address_regions() {
        let mut m = two_tenant_mix(11);
        for _ in 0..5_000 {
            let t = m.next_tenant_access();
            assert_eq!(
                t.access.addr.raw() / TENANT_STRIDE,
                t.tenant as u64,
                "access escaped its tenant region"
            );
        }
    }

    #[test]
    fn names_are_exposed_in_order() {
        let m = two_tenant_mix(1);
        assert_eq!(m.tenant_count(), 2);
        assert_eq!(m.tenant_name(0), Some("art"));
        assert_eq!(m.tenant_name(1), Some("mcf"));
        assert_eq!(m.tenant_name(2), None);
    }
}
