//! Synthetic workload models for the Line Distillation reproduction.
//!
//! The paper evaluates on SPEC CPU2000 Alpha SimPoints plus olden's
//! `health`. Those traces are not redistributable, so this crate models
//! each benchmark from the paper's own published characterization (see
//! [`spec2000`] for the calibration sources) using composable access
//! [`streams`](crate::Stream): pointer chases, sequential/rotating scans,
//! hot sets, two-pass streams and code loops.
//!
//! Two properties make the models faithful where it matters for LDIS:
//!
//! 1. **Sticky footprints** — each line has a deterministic word subset
//!    ([`WordsProfile`]), so footprints stabilize in the LRU stack exactly
//!    as the paper's Figure 2 observes;
//! 2. **Working-set pressure** — region sizes are chosen relative to the
//!    same 1 MB L2 the paper uses, preserving miss-rate ratios.
//!
//! # Example
//!
//! ```
//! use ldis_cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
//! use ldis_workloads::{spec2000, TraceLength};
//! use ldis_mem::LineGeometry;
//!
//! let mut mcf = spec2000::mcf(42);
//! let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
//! let mut hier = Hierarchy::hpca2007(l2);
//! mcf.drive(&mut hier, TraceLength::accesses(20_000));
//! assert!(hier.mpki() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod insensitive;
mod profile;
pub mod spec2000;
mod streams;
pub mod tenants;
mod workload;

pub use insensitive::cache_insensitive;
pub use profile::{ValueProfile, WordClass, WordsProfile};
pub use spec2000::{memory_intensive, Benchmark};
pub use streams::{
    CodeLoop, HotSet, PointerChase, RotatingScan, SequentialScan, Stream, TwoPassScan, Visit,
    VisitKind,
};
pub use tenants::{TenantAccess, TenantMix, TenantMixBuilder};
pub use workload::{TraceLength, Workload, WorkloadBuilder};
