//! The 11 cache-insensitive benchmarks of Appendix A.
//!
//! The paper excludes these from the main study because quadrupling the
//! cache barely changes their MPKI, and shows (Table 5) that LDIS leaves
//! them unchanged too. Two families reproduce that:
//!
//! * *streaming*: compulsory-dominated scans whose misses no capacity can
//!   remove (equake, lucas, mgrid, applu, gzip, fma3d);
//! * *resident*: working sets so small they always fit (mesa, crafty, gap,
//!   perlbmk, eon).

use crate::{spec2000::Benchmark, HotSet, SequentialScan, ValueProfile, WordsProfile, Workload};

const REGION: u64 = 1 << 24;

fn region(i: u64) -> u64 {
    (i + 101) * REGION
}

/// A compulsory-dominated streaming benchmark: an endless dense scan plus
/// a small resident hot set. `gap` tunes the MPKI.
fn streaming(name: &'static str, seed: u64, gap: f64, stream_weight: f64) -> Workload {
    Workload::builder(name, seed)
        .stream(
            stream_weight,
            SequentialScan::new(
                region(seed % 7),
                u64::MAX / 4,
                WordsProfile::dense(),
                seed ^ 1,
                false,
            ),
        )
        .stream(
            1.0 - stream_weight,
            HotSet::new(
                region(seed % 7 + 10),
                2_000,
                WordsProfile::dense(),
                seed ^ 2,
            ),
        )
        .inst_gap(gap)
        .store_fraction(0.2)
        .values(ValueProfile::float_heavy())
        .build()
}

/// A benchmark whose working set always fits in the 1 MB cache.
fn resident(name: &'static str, seed: u64, lines: u64, gap: f64) -> Workload {
    Workload::builder(name, seed)
        .stream(
            1.0,
            HotSet::new(region(20), lines, WordsProfile::dense(), seed ^ 1),
        )
        .inst_gap(gap)
        .store_fraction(0.25)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `equake`: streaming FP, 18.4 MPKI, insensitive up to 4 MB.
pub fn equake(seed: u64) -> Workload {
    streaming("equake", seed, 8.0, 0.95)
}

/// `lucas`: streaming FP, 16.2 MPKI.
pub fn lucas(seed: u64) -> Workload {
    streaming("lucas", seed, 9.0, 0.95)
}

/// `mgrid`: streaming FP, 7.7 MPKI.
pub fn mgrid(seed: u64) -> Workload {
    streaming("mgrid", seed, 19.0, 0.95)
}

/// `applu`: streaming FP, 13.8 MPKI.
pub fn applu(seed: u64) -> Workload {
    streaming("applu", seed, 11.0, 0.95)
}

/// `gzip`: streaming through its input, 1.45 MPKI.
pub fn gzip(seed: u64) -> Workload {
    streaming("gzip", seed, 90.0, 0.9)
}

/// `fma3d`: streaming FP, 4.6 MPKI.
pub fn fma3d(seed: u64) -> Workload {
    streaming("fma3d", seed, 30.0, 0.95)
}

/// `mesa`: resident working set, 0.62 MPKI.
pub fn mesa(seed: u64) -> Workload {
    streaming("mesa", seed, 210.0, 0.9)
}

/// `gap`: resident working set with a slow stream, 1.65 MPKI.
pub fn gap(seed: u64) -> Workload {
    streaming("gap", seed, 80.0, 0.9)
}

/// `crafty`: fits in the cache, 0.09 MPKI.
pub fn crafty(seed: u64) -> Workload {
    resident("crafty", seed, 3_000, 40.0)
}

/// `perlbmk`: fits in the cache, 0.04 MPKI.
pub fn perlbmk(seed: u64) -> Workload {
    resident("perlbmk", seed, 2_000, 60.0)
}

/// `eon`: fits in the cache, 0.01 MPKI.
pub fn eon(seed: u64) -> Workload {
    resident("eon", seed, 1_000, 80.0)
}

/// The 11 cache-insensitive benchmarks (Appendix A). `paper_mpki` is the
/// 1 MB traditional value from Table 5 / Appendix A prose;
/// `paper_avg_words` is not published for these and is recorded as 8 (the
/// streaming models use full lines).
pub fn cache_insensitive() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "equake",
            id: 100,
            make: equake,
            paper_mpki: 18.42,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "lucas",
            id: 101,
            make: lucas,
            paper_mpki: 16.17,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "mgrid",
            id: 102,
            make: mgrid,
            paper_mpki: 7.73,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "applu",
            id: 103,
            make: applu,
            paper_mpki: 13.75,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "mesa",
            id: 104,
            make: mesa,
            paper_mpki: 0.62,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "crafty",
            id: 105,
            make: crafty,
            paper_mpki: 0.09,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "gap",
            id: 106,
            make: gap,
            paper_mpki: 1.65,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "gzip",
            id: 107,
            make: gzip,
            paper_mpki: 1.45,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "fma3d",
            id: 108,
            make: fma3d,
            paper_mpki: 4.61,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "perlbmk",
            id: 109,
            make: perlbmk,
            paper_mpki: 0.04,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
        Benchmark {
            name: "eon",
            id: 110,
            make: eon,
            paper_mpki: 0.01,
            paper_compulsory_pct: f64::NAN,
            paper_avg_words: 8.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::TraceSource;

    #[test]
    fn eleven_benchmarks() {
        assert_eq!(cache_insensitive().len(), 11);
    }

    #[test]
    fn all_generate() {
        for b in cache_insensitive() {
            let mut w = (b.make)(3);
            for _ in 0..50 {
                assert!(w.next_access().is_some(), "{} stalled", b.name);
            }
        }
    }

    #[test]
    fn resident_benchmarks_stay_in_small_regions() {
        let t = crafty(1).record(5_000);
        let mut lines: Vec<u64> = t.accesses().iter().map(|a| a.addr.raw() / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.len() <= 3_000, "crafty touched {} lines", lines.len());
    }
}
