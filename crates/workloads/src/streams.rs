//! Access-stream building blocks for the synthetic benchmarks.
//!
//! A [`Stream`] produces a sequence of *line visits*: a line address plus
//! the set of words touched during the visit. Workloads interleave several
//! streams (pointer chases, scans, hot sets, …) to reproduce a benchmark's
//! published working-set size, words-used distribution and miss behaviour.

use crate::WordsProfile;
use ldis_mem::{Footprint, LineAddr, SimRng, WordIndex};

/// What a visit touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VisitKind {
    /// Data words (loads/stores).
    Data,
    /// An instruction fetch.
    Instr,
}

/// One visit to a line: which words of which line are touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// The visited line.
    pub line: LineAddr,
    /// The words touched (ignored for instruction visits).
    pub words: Footprint,
    /// Data or instruction fetch.
    pub kind: VisitKind,
}

impl Visit {
    /// A data visit.
    pub fn data(line: LineAddr, words: Footprint) -> Self {
        Visit {
            line,
            words,
            kind: VisitKind::Data,
        }
    }

    /// An instruction-fetch visit.
    pub fn instr(line: LineAddr) -> Self {
        Visit {
            line,
            words: Footprint::from_bits(0b1),
            kind: VisitKind::Instr,
        }
    }
}

/// A source of line visits.
pub trait Stream: Send {
    /// Produces the next visit.
    fn next_visit(&mut self, rng: &mut SimRng) -> Visit;
}

/// A sequential scan over a region, touching each line's sticky word set.
///
/// With `wrap = true` the scan cycles over `lines` forever (a reused array:
/// capacity behaviour). With `wrap = false` it streams into fresh memory
/// forever (compulsory-miss-dominated behaviour, wupwise-like).
#[derive(Clone, Debug)]
pub struct SequentialScan {
    base_line: u64,
    lines: u64,
    words: WordsProfile,
    salt: u64,
    wrap: bool,
    cursor: u64,
}

impl SequentialScan {
    /// Creates a scan of `lines` lines starting at `base_line`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0.
    pub fn new(base_line: u64, lines: u64, words: WordsProfile, salt: u64, wrap: bool) -> Self {
        assert!(lines > 0, "a scan needs at least one line");
        SequentialScan {
            base_line,
            lines,
            words,
            salt,
            wrap,
            cursor: 0,
        }
    }
}

impl Stream for SequentialScan {
    fn next_visit(&mut self, _rng: &mut SimRng) -> Visit {
        let offset = if self.wrap {
            self.cursor % self.lines
        } else {
            self.cursor
        };
        let line = LineAddr::new(self.base_line + offset);
        self.cursor = self.cursor.wrapping_add(1);
        Visit::data(line, self.words.footprint_for(line, self.salt))
    }
}

/// A cyclic scan that touches *one rotating word* per line per pass — the
/// `art` model. Every pass touches a different word of the same lines, so
/// word usage grows with residency time: exactly the behaviour behind
/// art's hole misses (Section 7.2) and its cache-size-dependent words-used
/// averages (Table 6).
#[derive(Clone, Debug)]
pub struct RotatingScan {
    base_line: u64,
    lines: u64,
    salt: u64,
    cursor: u64,
    passes_per_word: u64,
}

impl RotatingScan {
    /// Creates a rotating scan of `lines` lines starting at `base_line`.
    /// The touched word advances every pass; see
    /// [`with_passes_per_word`](RotatingScan::with_passes_per_word) to slow
    /// the rotation.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0.
    pub fn new(base_line: u64, lines: u64, salt: u64) -> Self {
        assert!(lines > 0, "a scan needs at least one line");
        RotatingScan {
            base_line,
            lines,
            salt,
            cursor: 0,
            passes_per_word: 1,
        }
    }

    /// Keeps the same word for `passes` consecutive passes before rotating.
    /// Consecutive same-word passes hit in the WOC; each rotation produces
    /// a burst of hole misses — art's mix of new WOC hits *and* hole misses
    /// (Section 7.2).
    ///
    /// # Panics
    ///
    /// Panics if `passes` is 0.
    #[must_use]
    pub fn with_passes_per_word(mut self, passes: u64) -> Self {
        assert!(passes > 0, "passes per word must be positive");
        self.passes_per_word = passes;
        self
    }
}

impl Stream for RotatingScan {
    fn next_visit(&mut self, _rng: &mut SimRng) -> Visit {
        let pass = self.cursor / self.lines;
        let offset = self.cursor % self.lines;
        self.cursor += 1;
        let line = LineAddr::new(self.base_line + offset);
        let rotation = pass / self.passes_per_word;
        let word = ((line.raw() ^ self.salt).wrapping_add(rotation) % 8) as u8;
        let mut words = Footprint::empty();
        words.touch(WordIndex::new(word));
        Visit::data(line, words)
    }
}

/// A pointer chase over a fixed pseudo-random permutation of node lines —
/// the mcf/health model. Each node's line has a sticky word set (the
/// node's fields), and successive visits jump across the region, so there
/// is no spatial locality between consecutive visits.
#[derive(Clone, Debug)]
pub struct PointerChase {
    base_line: u64,
    perm: Vec<u32>,
    words: WordsProfile,
    salt: u64,
    cur: u32,
}

impl PointerChase {
    /// Creates a chase over `nodes` lines starting at `base_line`, with the
    /// permutation derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0 or exceeds `u32::MAX`.
    pub fn new(base_line: u64, nodes: u64, words: WordsProfile, salt: u64, seed: u64) -> Self {
        assert!(nodes > 0 && nodes <= u32::MAX as u64, "1..=u32::MAX nodes");
        let mut perm: Vec<u32> = (0..nodes as u32).collect();
        // ldis: allow(S1, "seed is the caller's derived per-workload seed and 0xc4a5e is the unique PointerChase stream tag; rewriting as derive_seed_chain would shift the permutation and break the frozen goldens")
        let mut rng = SimRng::new(seed ^ 0xc4a5e);
        // Fisher–Yates, then rotate so the cycle structure is a single loop
        // (perm[i] = successor of node i in a random cyclic order).
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.index(i + 1));
        }
        let mut successor = vec![0u32; perm.len()];
        for (i, &node) in perm.iter().enumerate() {
            // The cyclic successor of position i; `perm` is a permutation
            // of 0..nodes, so both lookups are structurally in bounds.
            let next = perm.get((i + 1) % perm.len()).copied().unwrap_or(node);
            if let Some(slot) = successor.get_mut(node as usize) {
                *slot = next;
            }
        }
        PointerChase {
            base_line,
            perm: successor,
            words,
            salt,
            cur: 0,
        }
    }

    /// Number of nodes in the chase.
    pub fn nodes(&self) -> usize {
        self.perm.len()
    }
}

impl Stream for PointerChase {
    fn next_visit(&mut self, _rng: &mut SimRng) -> Visit {
        self.cur = self.perm.get(self.cur as usize).copied().unwrap_or(0);
        let line = LineAddr::new(self.base_line + self.cur as u64);
        Visit::data(line, self.words.footprint_for(line, self.salt))
    }
}

/// Uniform random visits over a small, hot region with sticky word sets —
/// models the reused portion of a working set.
#[derive(Clone, Debug)]
pub struct HotSet {
    base_line: u64,
    lines: u64,
    words: WordsProfile,
    salt: u64,
    extra_word_prob: f64,
}

impl HotSet {
    /// Creates a hot set of `lines` lines at `base_line`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0.
    pub fn new(base_line: u64, lines: u64, words: WordsProfile, salt: u64) -> Self {
        assert!(lines > 0, "a hot set needs at least one line");
        HotSet {
            base_line,
            lines,
            words,
            salt,
            extra_word_prob: 0.0,
        }
    }

    /// With probability `prob` a visit touches one extra word outside the
    /// line's sticky set — *footprint instability*. Those touches hit in a
    /// traditional cache but hole-miss against a distilled copy, which is
    /// how LDIS loses on bzip2/parser until the reverter steps in
    /// (Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn with_extra_word(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.extra_word_prob = prob;
        self
    }
}

impl Stream for HotSet {
    fn next_visit(&mut self, rng: &mut SimRng) -> Visit {
        let line = LineAddr::new(self.base_line + rng.range(self.lines));
        let mut words = self.words.footprint_for(line, self.salt);
        if self.extra_word_prob > 0.0 && rng.chance(self.extra_word_prob) {
            words.touch(WordIndex::new(rng.range(8) as u8));
        }
        Visit::data(line, words)
    }
}

/// The `swim` model: a streaming front touches one word per fresh line; a
/// trailing second pass, `lag_lines` behind, touches the *other seven*
/// words. The lag is chosen so the line still fits in an 8-way 1 MB
/// baseline but has already been evicted from the 6-way LOC — LDIS turns
/// baseline hits into hole misses (Section 7.1's swim pathology).
#[derive(Clone, Debug)]
pub struct TwoPassScan {
    base_line: u64,
    lag_lines: u64,
    cursor: u64,
    /// Whether the next visit is the trailing pass.
    back_next: bool,
}

impl TwoPassScan {
    /// Creates a two-pass scan starting at `base_line` with the trailing
    /// pass `lag_lines` behind the front.
    ///
    /// # Panics
    ///
    /// Panics if `lag_lines` is 0.
    pub fn new(base_line: u64, lag_lines: u64) -> Self {
        assert!(lag_lines > 0, "lag must be positive");
        TwoPassScan {
            base_line,
            lag_lines,
            cursor: 0,
            back_next: false,
        }
    }

    fn first_word(line: LineAddr) -> u8 {
        (line.raw() % 8) as u8
    }
}

impl Stream for TwoPassScan {
    fn next_visit(&mut self, _rng: &mut SimRng) -> Visit {
        if self.back_next && self.cursor >= self.lag_lines {
            self.back_next = false;
            let line = LineAddr::new(self.base_line + self.cursor - self.lag_lines);
            let mut words = Footprint::full(8);
            let first = Self::first_word(line);
            words = Footprint::from_bits(words.bits() & !(1 << first));
            return Visit::data(line, words);
        }
        let line = LineAddr::new(self.base_line + self.cursor);
        self.cursor += 1;
        self.back_next = true;
        let mut words = Footprint::empty();
        words.touch(WordIndex::new(Self::first_word(line)));
        Visit::data(line, words)
    }
}

/// A cyclic instruction-fetch loop over a code region.
#[derive(Clone, Debug)]
pub struct CodeLoop {
    base_line: u64,
    lines: u64,
    cursor: u64,
}

impl CodeLoop {
    /// Creates a code loop of `lines` instruction lines at `base_line`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is 0.
    pub fn new(base_line: u64, lines: u64) -> Self {
        assert!(lines > 0, "a code loop needs at least one line");
        CodeLoop {
            base_line,
            lines,
            cursor: 0,
        }
    }
}

impl Stream for CodeLoop {
    fn next_visit(&mut self, _rng: &mut SimRng) -> Visit {
        let line = LineAddr::new(self.base_line + self.cursor % self.lines);
        self.cursor += 1;
        Visit::instr(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1)
    }

    #[test]
    fn sequential_scan_wraps() {
        let mut s = SequentialScan::new(100, 3, WordsProfile::exactly(2), 0, true);
        let mut r = rng();
        let lines: Vec<u64> = (0..7).map(|_| s.next_visit(&mut r).line.raw()).collect();
        assert_eq!(lines, vec![100, 101, 102, 100, 101, 102, 100]);
    }

    #[test]
    fn sequential_scan_streams_without_wrap() {
        let mut s = SequentialScan::new(0, 3, WordsProfile::exactly(8), 0, false);
        let mut r = rng();
        let lines: Vec<u64> = (0..5).map(|_| s.next_visit(&mut r).line.raw()).collect();
        assert_eq!(lines, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rotating_scan_changes_word_each_pass() {
        let mut s = RotatingScan::new(0, 4, 9);
        let mut r = rng();
        let pass1: Vec<u16> = (0..4).map(|_| s.next_visit(&mut r).words.bits()).collect();
        let pass2: Vec<u16> = (0..4).map(|_| s.next_visit(&mut r).words.bits()).collect();
        for (a, b) in pass1.iter().zip(&pass2) {
            assert_eq!(a.count_ones(), 1);
            assert_ne!(a, b, "each pass must touch a different word");
        }
    }

    #[test]
    fn pointer_chase_is_a_single_cycle() {
        let mut s = PointerChase::new(0, 64, WordsProfile::exactly(1), 0, 5);
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let v = s.next_visit(&mut r);
            assert!(seen.insert(v.line), "cycle revisited {v:?} early");
        }
        assert_eq!(seen.len(), 64);
        // Next 64 visits repeat the same cycle.
        for _ in 0..64 {
            assert!(seen.contains(&s.next_visit(&mut r).line));
        }
    }

    #[test]
    fn pointer_chase_footprints_are_sticky_across_cycles() {
        let mut s = PointerChase::new(0, 16, WordsProfile::sparse(), 3, 5);
        let mut r = rng();
        let mut first: std::collections::BTreeMap<LineAddr, Footprint> =
            std::collections::BTreeMap::new();
        for _ in 0..16 {
            let v = s.next_visit(&mut r);
            first.insert(v.line, v.words);
        }
        for _ in 0..16 {
            let v = s.next_visit(&mut r);
            assert_eq!(first[&v.line], v.words);
        }
    }

    #[test]
    fn hot_set_stays_in_region() {
        let mut s = HotSet::new(1000, 8, WordsProfile::exactly(3), 0);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.next_visit(&mut r);
            assert!((1000..1008).contains(&v.line.raw()));
            assert_eq!(v.words.used_words(), 3);
        }
    }

    #[test]
    fn two_pass_scan_revisits_with_complementary_words() {
        let lag = 4;
        let mut s = TwoPassScan::new(0, lag);
        let mut r = rng();
        let mut front: std::collections::BTreeMap<u64, Footprint> =
            std::collections::BTreeMap::new();
        for _ in 0..40 {
            let v = s.next_visit(&mut r);
            match front.get(&v.line.raw()) {
                None => {
                    assert_eq!(v.words.used_words(), 1, "front pass touches one word");
                    front.insert(v.line.raw(), v.words);
                }
                Some(fw) => {
                    assert_eq!(v.words.used_words(), 7, "back pass touches the rest");
                    assert_eq!(fw.bits() & v.words.bits(), 0, "disjoint word sets");
                }
            }
        }
        // The trailing visit must lag the front by exactly `lag` lines.
        assert!(front.len() >= lag as usize);
    }

    #[test]
    fn code_loop_is_cyclic_instruction_fetch() {
        let mut s = CodeLoop::new(50, 2);
        let mut r = rng();
        let v1 = s.next_visit(&mut r);
        let v2 = s.next_visit(&mut r);
        let v3 = s.next_visit(&mut r);
        assert_eq!(v1.kind, VisitKind::Instr);
        assert_eq!(v1.line.raw(), 50);
        assert_eq!(v2.line.raw(), 51);
        assert_eq!(v3.line.raw(), 50);
    }
}
