//! Synthetic models of the paper's 16 memory-intensive benchmarks.
//!
//! Real SPEC CPU2000 Alpha traces are not available, so each benchmark is
//! modelled from the paper's own published characterization:
//!
//! * words-used distribution and its cache-size dependence (Figure 1,
//!   Table 6 — e.g. art/mcf ≈ 1.8 words, facerec/apsi ≈ 7–8);
//! * MPKI and compulsory-miss share (Table 2);
//! * the qualitative access structure the paper describes (mcf/health are
//!   pointer chases, swim streams with a trailing full-line second pass,
//!   art's word usage grows with residency, gcc is instruction-heavy).
//!
//! The models control exactly the properties line distillation depends on
//! — sticky per-line word subsets, working-set pressure against the 1 MB
//! L2, footprint stability in the LRU stack — so the *shape* of every
//! result in the paper is reproduced from mechanism, not replayed.
//!
//! Scale note: the paper simulates 250 M-instruction SimPoints. These
//! models are run for a few million accesses; working-set sizes are chosen
//! relative to the same 1 MB cache, so miss-rate *ratios* (the quantity
//! every figure reports) are preserved.

use crate::{
    CodeLoop, HotSet, PointerChase, RotatingScan, SequentialScan, TwoPassScan, ValueProfile,
    WordsProfile, Workload,
};

/// A named benchmark model: its constructor plus the paper's published
/// reference numbers (used in reports).
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Benchmark name as it appears in the paper.
    pub name: &'static str,
    /// A stable numeric identity used to derive per-cell seeds in sweep
    /// matrices (`SimRng::derive`). Ids are fixed forever: memory-intensive
    /// benchmarks occupy 0–15 in the paper's Table 2 order, the
    /// cache-insensitive suite occupies 100–110. Renaming or reordering a
    /// benchmark must never change its id, or committed golden snapshots
    /// would shift.
    pub id: u32,
    /// Constructs the workload with the given seed.
    pub make: fn(u64) -> Workload,
    /// MPKI of the 1 MB baseline reported in Table 2 (for reports only).
    pub paper_mpki: f64,
    /// Compulsory-miss share reported in Table 2 (for reports only).
    pub paper_compulsory_pct: f64,
    /// Average words used at 1 MB reported in Table 6 (for reports only).
    pub paper_avg_words: f64,
}

/// Line-address bases keeping each stream in a disjoint region.
const REGION: u64 = 1 << 24;

fn region(i: u64) -> u64 {
    (i + 1) * REGION
}

/// `art`: strided sweeps over neural-network weight arrays larger than the
/// cache. Each pass over a line touches a *different* word, so word usage
/// grows with residency — the source of art's hole misses and of Table 6's
/// cache-size-dependent words-used average (1.81 at 1 MB → 3.63 at 2 MB).
pub fn art(seed: u64) -> Workload {
    Workload::builder("art", seed)
        .stream(
            0.72,
            RotatingScan::new(region(0), 25_000, seed ^ 1).with_passes_per_word(3),
        )
        .stream(
            0.28,
            HotSet::new(region(1), 5_000, WordsProfile::sparse(), seed ^ 2),
        )
        .inst_gap(17.0)
        .store_fraction(0.12)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `mcf`: a pointer chase over a working set far larger than the cache
/// (Table 2's 136 MPKI, only 12 % baseline hits), touching ~1.8 words per
/// node. The WOC triples the number of resident nodes (Figure 7).
pub fn mcf(seed: u64) -> Workload {
    Workload::builder("mcf", seed)
        .stream(
            0.55,
            PointerChase::new(region(0), 24_000, WordsProfile::sparse(), seed ^ 1, seed),
        )
        .stream(
            0.35,
            PointerChase::new(
                region(1),
                110_000,
                WordsProfile::sparse(),
                seed ^ 3,
                seed ^ 7,
            ),
        )
        .stream(
            0.1,
            HotSet::new(region(2), 2_000, WordsProfile::sparse(), seed ^ 2),
        )
        .inst_gap(6.0)
        .store_fraction(0.2)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// `twolf`: placement/routing structures a little larger than the cache,
/// ~3.2 words used. Distillation squeezes the working set into the WOC.
pub fn twolf(seed: u64) -> Workload {
    Workload::builder("twolf", seed)
        .stream(
            0.85,
            HotSet::new(region(0), 23_000, WordsProfile::mixed(), seed ^ 1),
        )
        .stream(
            0.15,
            HotSet::new(region(1), 3_000, WordsProfile::mixed(), seed ^ 2),
        )
        .inst_gap(16.0)
        .store_fraction(0.25)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `vpr`: like twolf with a slightly denser word profile (3.71 at 1 MB).
pub fn vpr(seed: u64) -> Workload {
    let words = WordsProfile::new([0.18, 0.18, 0.17, 0.15, 0.12, 0.08, 0.06, 0.06]);
    Workload::builder("vpr", seed)
        .stream(
            0.8,
            HotSet::new(region(0), 23_000, words, seed ^ 1).with_extra_word(0.04),
        )
        .stream(
            0.2,
            HotSet::new(region(1), 4_000, WordsProfile::mixed(), seed ^ 2),
        )
        .inst_gap(22.0)
        .store_fraction(0.25)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `ammp`: molecular-dynamics neighbour lists — sparse (2.4 words) random
/// visits over ~1.3 MB.
pub fn ammp(seed: u64) -> Workload {
    let words = WordsProfile::new([0.35, 0.3, 0.15, 0.1, 0.05, 0.03, 0.01, 0.01]);
    Workload::builder("ammp", seed)
        .stream(0.9, HotSet::new(region(0), 26_000, words, seed ^ 1))
        .stream(
            0.1,
            SequentialScan::new(region(1), 4_000, WordsProfile::mixed(), seed ^ 2, true),
        )
        .inst_gap(19.0)
        .store_fraction(0.3)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `galgel`: dense FP kernel (7.6 words used): almost every word of every
/// line matters, so distillation has little to offer (Figure 6).
pub fn galgel(seed: u64) -> Workload {
    Workload::builder("galgel", seed)
        .stream(
            0.8,
            HotSet::new(region(0), 19_000, WordsProfile::dense(), seed ^ 1),
        )
        .stream(
            0.2,
            SequentialScan::new(region(1), 8_000, WordsProfile::dense(), seed ^ 2, true),
        )
        .inst_gap(10.0)
        .store_fraction(0.2)
        // galgel's matrices hold many zero/narrow values: compression
        // works on whole lines even though distillation cannot (Fig. 11's
        // "CMPR beats FAC on galgel").
        .values(ValueProfile::new(0.3, 0.0, 0.3))
        .build()
}

/// `bzip2`: a working set that *just* fits the 8-way baseline, at ~4 words
/// used. Losing two LOC ways hurts more than the WOC gives back, so plain
/// LDIS increases misses and the reverter must step in (Figure 6).
pub fn bzip2(seed: u64) -> Workload {
    let words = WordsProfile::new([0.12, 0.15, 0.18, 0.18, 0.14, 0.1, 0.07, 0.06]);
    Workload::builder("bzip2", seed)
        .stream(
            0.8,
            HotSet::new(region(0), 15_000, words, seed ^ 1).with_extra_word(0.35),
        )
        .stream(
            0.2,
            SequentialScan::new(
                region(1),
                u64::MAX / 4,
                WordsProfile::dense(),
                seed ^ 2,
                false,
            ),
        )
        .inst_gap(24.0)
        .store_fraction(0.3)
        .values(ValueProfile::mixed_int())
        .build()
}

/// `facerec`: bimodal image data — a dense resident structure (full lines)
/// plus a sparse secondary structure whose 3-word lines pack 8-to-a-way in
/// the WOC. The WOC absorbs the sparse structure, which is why Figure 8
/// shows distill ≈ a 1.5 MB traditional cache for facerec.
pub fn facerec(seed: u64) -> Workload {
    let sparse3 = WordsProfile::new([0.15, 0.3, 0.35, 0.15, 0.05, 0.0, 0.0, 0.0]);
    Workload::builder("facerec", seed)
        .stream(
            0.55,
            HotSet::new(region(0), 12_000, WordsProfile::dense(), seed ^ 1),
        )
        .stream(0.35, HotSet::new(region(1), 16_000, sparse3, seed ^ 3))
        .stream(
            0.1,
            SequentialScan::new(
                region(2),
                u64::MAX / 4,
                WordsProfile::dense(),
                seed ^ 2,
                false,
            ),
        )
        .inst_gap(11.0)
        .store_fraction(0.15)
        .values(ValueProfile::float_heavy())
        .build()
}

/// `parser`: dictionary structures, 6.4 words used, working set around the
/// cache size; LDIS is slightly harmful without the reverter.
pub fn parser(seed: u64) -> Workload {
    let words = WordsProfile::new([0.05, 0.06, 0.08, 0.1, 0.12, 0.16, 0.2, 0.23]);
    Workload::builder("parser", seed)
        .stream(
            0.75,
            HotSet::new(region(0), 15_500, words, seed ^ 1).with_extra_word(0.12),
        )
        .stream(
            0.25,
            SequentialScan::new(region(1), u64::MAX / 4, words, seed ^ 2, false),
        )
        .inst_gap(34.0)
        .store_fraction(0.25)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// `sixtrack`: accelerator simulation, 4.3 words, low MPKI, strong LDIS
/// gains (> 40 % in Figure 6).
pub fn sixtrack(seed: u64) -> Workload {
    let words = WordsProfile::new([0.2, 0.2, 0.15, 0.12, 0.1, 0.09, 0.07, 0.07]);
    Workload::builder("sixtrack", seed)
        .stream(0.9, HotSet::new(region(0), 20_000, words, seed ^ 1))
        .stream(0.1, HotSet::new(region(1), 2_000, words, seed ^ 2))
        .inst_gap(95.0)
        .store_fraction(0.2)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// `apsi`: dense meteorology kernel (7.8 words), tiny MPKI.
pub fn apsi(seed: u64) -> Workload {
    Workload::builder("apsi", seed)
        .stream(
            0.85,
            HotSet::new(region(0), 17_500, WordsProfile::dense(), seed ^ 1),
        )
        .stream(
            0.15,
            SequentialScan::new(region(1), 6_000, WordsProfile::dense(), seed ^ 2, true),
        )
        .inst_gap(110.0)
        .store_fraction(0.2)
        .values(ValueProfile::float_heavy())
        .build()
}

/// `swim`: the paper's LDIS pathology (Section 7.1). A streaming front
/// touches one word per line; a second pass ~14 k lines later touches the
/// other seven. The line still sits in the 8-way baseline at that reuse
/// distance but has already been distilled out of the 6-way LOC, so every
/// second-pass visit becomes a hole miss. Half the misses are compulsory
/// (Table 2: 50.4 %).
pub fn swim(seed: u64) -> Workload {
    Workload::builder("swim", seed)
        .stream(1.0, TwoPassScan::new(region(0), 7_000))
        .inst_gap(4.7)
        .store_fraction(0.3)
        .values(ValueProfile::float_heavy())
        .build()
}

/// `vortex`: object database, 3 words used, compulsory-heavy (53 %).
pub fn vortex(seed: u64) -> Workload {
    let words = WordsProfile::new([0.25, 0.25, 0.18, 0.12, 0.08, 0.05, 0.04, 0.03]);
    Workload::builder("vortex", seed)
        .stream(0.5, HotSet::new(region(0), 10_000, words, seed ^ 1))
        .stream(
            0.5,
            SequentialScan::new(region(1), u64::MAX / 4, words, seed ^ 2, false),
        )
        .inst_gap(75.0)
        .store_fraction(0.3)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// `gcc`: instruction-cache intensive (Section 7.4 notes the extra tag
/// cycle costs it IPC) with mostly-compulsory data misses (77 %).
pub fn gcc(seed: u64) -> Workload {
    let words = WordsProfile::new([0.05, 0.06, 0.08, 0.1, 0.12, 0.15, 0.2, 0.24]);
    Workload::builder("gcc", seed)
        .stream(0.62, CodeLoop::new(region(0), 3_000))
        .stream(
            0.18,
            HotSet::new(region(1), 17_500, WordsProfile::mixed(), seed ^ 1),
        )
        .stream(
            0.2,
            SequentialScan::new(region(2), u64::MAX / 4, words, seed ^ 2, false),
        )
        .inst_gap(55.0)
        .store_fraction(0.25)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// `wupwise`: dense streaming (7 words, 83 % compulsory): neither LDIS nor
/// extra capacity can remove compulsory misses.
pub fn wupwise(seed: u64) -> Workload {
    Workload::builder("wupwise", seed)
        .stream(
            0.9,
            SequentialScan::new(
                region(0),
                u64::MAX / 4,
                WordsProfile::dense(),
                seed ^ 1,
                false,
            ),
        )
        .stream(
            0.1,
            HotSet::new(region(1), 4_000, WordsProfile::dense(), seed ^ 2),
        )
        .inst_gap(26.0)
        .store_fraction(0.2)
        .values(ValueProfile::float_heavy())
        .build()
}

/// `health` (olden): a linked-list hospital simulation — the paper's
/// pointer-chasing showcase. 2.44 words per node, dataset ~2× the cache,
/// thrashing under LRU; the WOC roughly doubles resident nodes, and
/// Figure 8 shows distill beating a 2 MB traditional cache.
pub fn health(seed: u64) -> Workload {
    let words = WordsProfile::new([0.3, 0.3, 0.2, 0.12, 0.05, 0.02, 0.005, 0.005]);
    Workload::builder("health", seed)
        .stream(
            1.0,
            PointerChase::new(region(0), 38_000, words, seed ^ 1, seed),
        )
        .inst_gap(5.5)
        .store_fraction(0.25)
        .values(ValueProfile::pointer_heavy())
        .build()
}

/// The 16 memory-intensive benchmarks in the paper's order (Table 2).
pub fn memory_intensive() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "art",
            id: 0,
            make: art,
            paper_mpki: 38.3,
            paper_compulsory_pct: 0.5,
            paper_avg_words: 1.81,
        },
        Benchmark {
            name: "mcf",
            id: 1,
            make: mcf,
            paper_mpki: 136.0,
            paper_compulsory_pct: 2.2,
            paper_avg_words: 1.83,
        },
        Benchmark {
            name: "twolf",
            id: 2,
            make: twolf,
            paper_mpki: 3.6,
            paper_compulsory_pct: 2.9,
            paper_avg_words: 3.24,
        },
        Benchmark {
            name: "vpr",
            id: 3,
            make: vpr,
            paper_mpki: 2.2,
            paper_compulsory_pct: 4.3,
            paper_avg_words: 3.71,
        },
        Benchmark {
            name: "ammp",
            id: 4,
            make: ammp,
            paper_mpki: 2.8,
            paper_compulsory_pct: 5.1,
            paper_avg_words: 2.40,
        },
        Benchmark {
            name: "galgel",
            id: 5,
            make: galgel,
            paper_mpki: 4.7,
            paper_compulsory_pct: 5.9,
            paper_avg_words: 7.60,
        },
        Benchmark {
            name: "bzip2",
            id: 6,
            make: bzip2,
            paper_mpki: 2.4,
            paper_compulsory_pct: 15.5,
            paper_avg_words: 4.13,
        },
        Benchmark {
            name: "facerec",
            id: 7,
            make: facerec,
            paper_mpki: 4.8,
            paper_compulsory_pct: 18.0,
            paper_avg_words: 7.01,
        },
        Benchmark {
            name: "parser",
            id: 8,
            make: parser,
            paper_mpki: 1.6,
            paper_compulsory_pct: 20.3,
            paper_avg_words: 6.42,
        },
        Benchmark {
            name: "sixtrack",
            id: 9,
            make: sixtrack,
            paper_mpki: 0.4,
            paper_compulsory_pct: 20.6,
            paper_avg_words: 4.34,
        },
        Benchmark {
            name: "apsi",
            id: 10,
            make: apsi,
            paper_mpki: 0.3,
            paper_compulsory_pct: 22.8,
            paper_avg_words: 7.80,
        },
        Benchmark {
            name: "swim",
            id: 11,
            make: swim,
            paper_mpki: 26.6,
            paper_compulsory_pct: 50.4,
            paper_avg_words: 6.91,
        },
        Benchmark {
            name: "vortex",
            id: 12,
            make: vortex,
            paper_mpki: 0.7,
            paper_compulsory_pct: 53.4,
            paper_avg_words: 3.04,
        },
        Benchmark {
            name: "gcc",
            id: 13,
            make: gcc,
            paper_mpki: 0.4,
            paper_compulsory_pct: 77.4,
            paper_avg_words: 6.38,
        },
        Benchmark {
            name: "wupwise",
            id: 14,
            make: wupwise,
            paper_mpki: 2.3,
            paper_compulsory_pct: 83.0,
            paper_avg_words: 7.01,
        },
        Benchmark {
            name: "health",
            id: 15,
            make: health,
            paper_mpki: 62.0,
            paper_compulsory_pct: 0.73,
            paper_avg_words: 2.44,
        },
    ]
}

/// Looks up a benchmark model (memory-intensive or cache-insensitive) by
/// name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    memory_intensive()
        .into_iter()
        .chain(crate::insensitive::cache_insensitive())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_mem::TraceSource;

    #[test]
    fn all_sixteen_present_in_paper_order() {
        let names: Vec<&str> = memory_intensive().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "art", "mcf", "twolf", "vpr", "ammp", "galgel", "bzip2", "facerec", "parser",
                "sixtrack", "apsi", "swim", "vortex", "gcc", "wupwise", "health"
            ]
        );
    }

    #[test]
    fn every_benchmark_generates_accesses() {
        for b in memory_intensive() {
            let mut w = (b.make)(1);
            for _ in 0..100 {
                assert!(w.next_access().is_some(), "{} stalled", b.name);
            }
        }
    }

    #[test]
    fn ids_are_stable_and_unique_across_suites() {
        let all: Vec<Benchmark> = memory_intensive()
            .into_iter()
            .chain(crate::cache_insensitive())
            .collect();
        let mut ids: Vec<u32> = all.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "benchmark ids must be unique");
        // Spot-check the frozen assignment: Table 2 order is 0-15, the
        // insensitive suite starts at 100. These must never change (golden
        // snapshots derive per-cell seeds from them).
        assert_eq!(by_name("art").unwrap().id, 0);
        assert_eq!(by_name("swim").unwrap().id, 11);
        assert_eq!(by_name("health").unwrap().id, 15);
        assert_eq!(by_name("equake").unwrap().id, 100);
        assert_eq!(by_name("eon").unwrap().id, 110);
    }

    #[test]
    fn by_name_finds_both_suites() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("health").is_some());
        assert!(by_name("equake").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn benchmarks_are_deterministic_per_seed() {
        for b in [by_name("art").unwrap(), by_name("swim").unwrap()] {
            let t1 = (b.make)(7).record(1000);
            let t2 = (b.make)(7).record(1000);
            assert_eq!(t1.accesses(), t2.accesses(), "{}", b.name);
        }
    }
}
