//! Per-line word-usage profiles and per-address value models.
//!
//! The paper's results are driven by three per-benchmark distributions:
//! how many words of a line get used (Figure 1 / Table 6), *which* words
//! (sticky per line, so footprints stabilize — Figure 2), and what values
//! the words hold (compressibility, Figure 10). This module provides
//! deterministic, hash-derived versions of all three so that a line always
//! behaves the same way no matter when it is revisited.

use ldis_mem::{Footprint, LineAddr};

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A distribution over the number of words used per line (1..=8), sampled
/// deterministically per line address.
///
/// # Example
///
/// ```
/// use ldis_workloads::WordsProfile;
/// use ldis_mem::LineAddr;
///
/// let p = WordsProfile::sparse(); // mostly 1–2 words
/// let fp = p.footprint_for(LineAddr::new(42), 7);
/// // Deterministic: the same line always uses the same words.
/// assert_eq!(fp, p.footprint_for(LineAddr::new(42), 7));
/// assert!(fp.used_words() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WordsProfile {
    /// `weights[k]` is the relative probability that a line uses `k + 1`
    /// words (k in 0..8).
    weights: [f64; 8],
    cumulative: [f64; 8],
}

impl WordsProfile {
    /// Creates a profile from relative weights for 1..=8 used words.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: [f64; 8]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut cumulative = [0.0; 8];
        let mut acc = 0.0;
        for (c, &w) in cumulative.iter_mut().zip(&weights) {
            acc += w / total;
            *c = acc;
        }
        // Pin the final bucket to exactly 1.0 against rounding drift.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        WordsProfile {
            weights,
            cumulative,
        }
    }

    /// Every line uses exactly `n` words.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in 1..=8.
    pub fn exactly(n: u8) -> Self {
        assert!((1..=8).contains(&n), "word count must be in 1..=8");
        let mut w = [0.0; 8];
        if let Some(slot) = w.get_mut(n as usize - 1) {
            *slot = 1.0;
        }
        WordsProfile::new(w)
    }

    /// A pointer-chasing profile: mostly 1–2 words (art/mcf-like, average
    /// ≈ 1.8).
    pub fn sparse() -> Self {
        WordsProfile::new([0.45, 0.38, 0.1, 0.04, 0.02, 0.01, 0.0, 0.0])
    }

    /// A mixed profile averaging ≈ 3.2 words (twolf-like).
    pub fn mixed() -> Self {
        WordsProfile::new([0.22, 0.2, 0.18, 0.14, 0.1, 0.07, 0.05, 0.04])
    }

    /// A dense profile: most lines use 7–8 words (facerec/apsi-like,
    /// average ≈ 7).
    pub fn dense() -> Self {
        WordsProfile::new([0.02, 0.02, 0.03, 0.04, 0.06, 0.1, 0.18, 0.55])
    }

    /// The expected number of words used.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .enumerate()
            .map(|(k, &w)| (k + 1) as f64 * w / total)
            .sum()
    }

    /// The number of words line `line` uses (deterministic).
    pub fn words_for(&self, line: LineAddr, salt: u64) -> u8 {
        let h = mix64(line.raw() ^ salt.rotate_left(17));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        for (k, &c) in self.cumulative.iter().enumerate() {
            if u < c {
                // ldis: allow(T1, "k indexes the 8-entry cumulative table")
                return k as u8 + 1;
            }
        }
        8
    }

    /// The sticky footprint of `line`: `words_for` contiguous words starting
    /// at a hash-derived offset. Contiguity models struct-field locality;
    /// stickiness is what lets footprints stabilize in the LRU stack.
    pub fn footprint_for(&self, line: LineAddr, salt: u64) -> Footprint {
        let count = self.words_for(line, salt);
        let h = mix64(line.raw().rotate_left(23) ^ salt);
        // ldis: allow(T1, "count is 1..=8 from words_for, so h % (8 - count + 1) is at most 7")
        let start = (h % (8 - count as u64 + 1)) as u8;
        let mut fp = Footprint::empty();
        fp.touch_span(
            ldis_mem::WordIndex::new(start),
            ldis_mem::WordIndex::new(start + count - 1),
        );
        fp
    }
}

/// The four 32-bit encoding classes of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WordClass {
    /// The value 0 (2-bit code).
    Zero,
    /// The value 1 (2-bit code).
    One,
    /// Upper 16 bits are zero (2-bit code + 16 bits).
    Narrow,
    /// Incompressible (2-bit code + 32 bits).
    Full,
}

/// A per-benchmark model of the values stored in memory, at 32-bit
/// granularity, used by the compression experiments (Section 8).
///
/// Values are a deterministic function of the 32-bit-aligned address, so
/// the compressibility of a line never changes between samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueProfile {
    /// Probability that a 32-bit chunk is 0.
    pub p_zero: f64,
    /// Probability that a 32-bit chunk is 1.
    pub p_one: f64,
    /// Probability that a chunk fits in 16 bits (and is neither 0 nor 1).
    pub p_narrow: f64,
}

impl ValueProfile {
    /// Creates a profile; the remaining probability mass is incompressible.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or they sum above 1.
    pub fn new(p_zero: f64, p_one: f64, p_narrow: f64) -> Self {
        assert!(
            p_zero >= 0.0 && p_one >= 0.0 && p_narrow >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(
            p_zero + p_one + p_narrow <= 1.0 + 1e-12,
            "probabilities must sum to at most 1"
        );
        ValueProfile {
            p_zero,
            p_one,
            p_narrow,
        }
    }

    /// Pointer-heavy integer code: many zeros and narrow values
    /// (mcf-like, highly compressible once filtered).
    pub fn pointer_heavy() -> Self {
        ValueProfile::new(0.35, 0.05, 0.3)
    }

    /// Mixed integer data (twolf/bzip2-like).
    pub fn mixed_int() -> Self {
        ValueProfile::new(0.2, 0.05, 0.2)
    }

    /// Floating-point data: mostly incompressible (swim/galgel-like).
    pub fn float_heavy() -> Self {
        ValueProfile::new(0.08, 0.0, 0.05)
    }

    /// The class of the 32-bit chunk at 4-byte-aligned address `addr4`
    /// (the address divided by 4).
    pub fn class_at(&self, addr4: u64, salt: u64) -> WordClass {
        let h = mix64(addr4 ^ salt.rotate_left(29));
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.p_zero {
            WordClass::Zero
        } else if u < self.p_zero + self.p_one {
            WordClass::One
        } else if u < self.p_zero + self.p_one + self.p_narrow {
            WordClass::Narrow
        } else {
            WordClass::Full
        }
    }

    /// A concrete 32-bit value of the class at `addr4`.
    pub fn value_at(&self, addr4: u64, salt: u64) -> u32 {
        let h = mix64(addr4.rotate_left(13) ^ salt);
        match self.class_at(addr4, salt) {
            WordClass::Zero => 0,
            WordClass::One => 1,
            WordClass::Narrow => {
                // 2..=0xffff: never 0 or 1, upper half zero.
                // ldis: allow(T1, "intentional fold of the 64-bit hash to a 32-bit word value")
                ((h as u32) & 0xffff).max(2)
            }
            // ldis: allow(T1, "intentional fold of the 64-bit hash to a 32-bit word value")
            WordClass::Full => (h as u32) | 0x0001_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_profile_mean_matches_weights() {
        assert!((WordsProfile::exactly(8).mean() - 8.0).abs() < 1e-12);
        let sparse = WordsProfile::sparse().mean();
        assert!((1.5..2.2).contains(&sparse), "sparse mean {sparse}");
        let dense = WordsProfile::dense().mean();
        assert!((6.5..8.0).contains(&dense), "dense mean {dense}");
    }

    #[test]
    fn sampled_mean_tracks_profile_mean() {
        let p = WordsProfile::mixed();
        let n = 20_000u64;
        let sum: u64 = (0..n)
            .map(|i| p.words_for(LineAddr::new(i), 3) as u64)
            .sum();
        let got = sum as f64 / n as f64;
        assert!((got - p.mean()).abs() < 0.1, "got {got}, want {}", p.mean());
    }

    #[test]
    fn footprints_are_sticky_and_contiguous() {
        let p = WordsProfile::mixed();
        for i in 0..200u64 {
            let line = LineAddr::new(i);
            let fp = p.footprint_for(line, 9);
            assert_eq!(fp, p.footprint_for(line, 9), "sticky");
            let words: Vec<u8> = fp.iter_used().map(|w| w.get()).collect();
            assert!(!words.is_empty());
            for pair in words.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "contiguous");
            }
        }
    }

    #[test]
    fn different_salts_differ() {
        let p = WordsProfile::mixed();
        let distinct = (0..100u64)
            .filter(|&i| {
                p.footprint_for(LineAddr::new(i), 1) != p.footprint_for(LineAddr::new(i), 2)
            })
            .count();
        assert!(distinct > 30, "salts should decorrelate, got {distinct}");
    }

    #[test]
    fn value_classes_match_probabilities() {
        let v = ValueProfile::new(0.5, 0.1, 0.2);
        let n = 40_000u64;
        let mut counts = [0u64; 4];
        for i in 0..n {
            let idx = match v.class_at(i, 7) {
                WordClass::Zero => 0,
                WordClass::One => 1,
                WordClass::Narrow => 2,
                WordClass::Full => 3,
            };
            counts[idx] += 1;
        }
        let frac = |c: u64| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.5).abs() < 0.02);
        assert!((frac(counts[1]) - 0.1).abs() < 0.02);
        assert!((frac(counts[2]) - 0.2).abs() < 0.02);
        assert!((frac(counts[3]) - 0.2).abs() < 0.02);
    }

    #[test]
    fn values_are_consistent_with_classes() {
        let v = ValueProfile::mixed_int();
        for i in 0..2000u64 {
            let value = v.value_at(i, 5);
            match v.class_at(i, 5) {
                WordClass::Zero => assert_eq!(value, 0),
                WordClass::One => assert_eq!(value, 1),
                WordClass::Narrow => {
                    assert!(value > 1 && value <= 0xffff, "narrow value {value:#x}")
                }
                WordClass::Full => assert!(value > 0xffff, "full value {value:#x}"),
            }
        }
    }

    #[test]
    fn values_are_deterministic() {
        let v = ValueProfile::pointer_heavy();
        assert_eq!(v.value_at(123, 9), v.value_at(123, 9));
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn rejects_overweight_values() {
        let _ = ValueProfile::new(0.8, 0.3, 0.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_all_zero_weights() {
        let _ = WordsProfile::new([0.0; 8]);
    }
}
