//! Property tests for the timing model.

use ldis_cache::{BaselineL2, CacheConfig};
use ldis_mem::{LineAddr, LineGeometry};
use ldis_timing::{L2Timing, MemorySystem, SystemConfig, TimingSim};
use ldis_workloads::spec2000;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Memory completions never travel back in time, and later issues
    /// never complete before strictly earlier issues *on the same bank*.
    #[test]
    fn memory_completions_are_causal(
        requests in prop::collection::vec((0u64..10_000, 0u64..512), 1..100),
    ) {
        let mut mem = MemorySystem::new(32, 400, 16, 32);
        let mut cycle = 0u64;
        let mut per_bank: std::collections::HashMap<u64, u64> = Default::default();
        for (advance, line) in requests {
            cycle += advance;
            let (issue, done) = mem.fetch(cycle, LineAddr::new(line));
            prop_assert!(issue >= cycle);
            prop_assert!(done >= issue + 400, "latency floor");
            let bank = line % 32;
            if let Some(&prev) = per_bank.get(&bank) {
                prop_assert!(done > prev, "bank order violated");
            }
            per_bank.insert(bank, done);
        }
    }

    /// IPC is positive, bounded by the width, and monotone in the branch
    /// misprediction rate.
    #[test]
    fn ipc_bounds_and_branch_monotonicity(rate in 0.0f64..30.0) {
        let run = |r: f64| {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.3, r);
            TimingSim::new(l2, cfg, L2Timing::baseline())
                .run(&mut spec2000::sixtrack(1), 15_000)
        };
        let base = run(0.0);
        let slowed = run(rate);
        prop_assert!(base.ipc() > 0.0 && base.ipc() <= 8.0);
        prop_assert!(slowed.cycles >= base.cycles, "mispredicts add cycles");
        prop_assert_eq!(slowed.instructions, base.instructions);
    }

    /// Higher dependence never increases IPC (less latency hiding).
    #[test]
    fn dependence_is_monotone(dep in 0.0f64..1.0) {
        let run = |d: f64| {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(d, 2.0);
            TimingSim::new(l2, cfg, L2Timing::baseline())
                .run(&mut spec2000::health(1), 15_000)
                .ipc()
        };
        let free = run(0.0);
        let bound = run(dep);
        prop_assert!(bound <= free * 1.001, "dep {dep}: {bound} > {free}");
    }
}

/// A slower L2 (the distill latency adders) can only reduce IPC when the
/// miss counts are identical — isolated by running the *baseline* cache
/// with both timing models.
#[test]
fn latency_adders_alone_cost_ipc() {
    let run = |timing: L2Timing| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.6, 2.0);
        TimingSim::new(l2, cfg, timing)
            .run(&mut spec2000::twolf(1), 60_000)
            .ipc()
    };
    let fast = run(L2Timing::baseline());
    let slow = run(L2Timing::distill());
    assert!(
        slow < fast,
        "the +1 tag cycle must cost something: {slow} vs {fast}"
    );
    assert!(
        slow > fast * 0.9,
        "but only about a cycle's worth: {slow} vs {fast}"
    );
}

/// MSHR pressure shows up for miss-heavy streams and is absent with an
/// enormous MSHR.
#[test]
fn mshr_bound_matters() {
    let run = |mshrs: u32| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let mut cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.3, 0.0);
        cfg.mshr_entries = mshrs;
        TimingSim::new(l2, cfg, L2Timing::baseline()).run(&mut spec2000::wupwise(1), 60_000)
    };
    let tight = run(1);
    let loose = run(1024);
    assert!(tight.mshr_stall_cycles > 0, "a 1-entry MSHR must stall");
    // The stalled issues push dependent completions later, costing cycles.
    assert!(
        tight.cycles > loose.cycles,
        "tight {} vs loose {}",
        tight.cycles,
        loose.cycles
    );
}
