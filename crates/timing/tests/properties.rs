//! Property tests for the timing model, driven by a deterministic
//! seeded generator (`SimRng`) so every run explores the same cases and
//! failures reproduce exactly.

use ldis_cache::{BaselineL2, CacheConfig};
use ldis_mem::{LineAddr, LineGeometry, SimRng};
use ldis_timing::{L2Timing, MemorySystem, SystemConfig, TimingSim};
use ldis_workloads::spec2000;

/// Memory completions never travel back in time, and later issues
/// never complete before strictly earlier issues *on the same bank*.
#[test]
fn memory_completions_are_causal() {
    let mut rng = SimRng::new(0x7a01);
    for case in 0..30 {
        let mut mem = MemorySystem::new(32, 400, 16, 32);
        let mut cycle = 0u64;
        let mut per_bank: std::collections::BTreeMap<u64, u64> = Default::default();
        let requests = 1 + rng.index(99);
        for _ in 0..requests {
            let advance = rng.range(10_000);
            let line = rng.range(512);
            cycle += advance;
            let (issue, done) = mem.fetch(cycle, LineAddr::new(line));
            assert!(issue >= cycle, "case {case}");
            assert!(done >= issue + 400, "case {case}: latency floor");
            let bank = line % 32;
            if let Some(&prev) = per_bank.get(&bank) {
                assert!(done > prev, "case {case}: bank order violated");
            }
            per_bank.insert(bank, done);
        }
    }
}

/// IPC is positive, bounded by the width, and monotone in the branch
/// misprediction rate.
#[test]
fn ipc_bounds_and_branch_monotonicity() {
    let run = |r: f64| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.3, r);
        TimingSim::new(l2, cfg, L2Timing::baseline()).run(&mut spec2000::sixtrack(1), 15_000)
    };
    let base = run(0.0);
    let mut rng = SimRng::new(0x7a02);
    for case in 0..8 {
        let rate = rng.f64() * 30.0;
        let slowed = run(rate);
        assert!(base.ipc() > 0.0 && base.ipc() <= 8.0, "case {case}");
        assert!(
            slowed.cycles >= base.cycles,
            "case {case}: mispredicts add cycles"
        );
        assert_eq!(slowed.instructions, base.instructions, "case {case}");
    }
}

/// Higher dependence never increases IPC (less latency hiding).
#[test]
fn dependence_is_monotone() {
    let run = |d: f64| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(d, 2.0);
        TimingSim::new(l2, cfg, L2Timing::baseline())
            .run(&mut spec2000::health(1), 15_000)
            .ipc()
    };
    let free = run(0.0);
    let mut rng = SimRng::new(0x7a03);
    for case in 0..8 {
        let dep = rng.f64();
        let bound = run(dep);
        assert!(
            bound <= free * 1.001,
            "case {case}: dep {dep}: {bound} > {free}"
        );
    }
}

/// A slower L2 (the distill latency adders) can only reduce IPC when the
/// miss counts are identical — isolated by running the *baseline* cache
/// with both timing models.
#[test]
fn latency_adders_alone_cost_ipc() {
    let run = |timing: L2Timing| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.6, 2.0);
        TimingSim::new(l2, cfg, timing)
            .run(&mut spec2000::twolf(1), 60_000)
            .ipc()
    };
    let fast = run(L2Timing::baseline());
    let slow = run(L2Timing::distill());
    assert!(
        slow < fast,
        "the +1 tag cycle must cost something: {slow} vs {fast}"
    );
    assert!(
        slow > fast * 0.9,
        "but only about a cycle's worth: {slow} vs {fast}"
    );
}

/// MSHR pressure shows up for miss-heavy streams and is absent with an
/// enormous MSHR.
#[test]
fn mshr_bound_matters() {
    let run = |mshrs: u32| {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let mut cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.3, 0.0);
        cfg.mshr_entries = mshrs;
        TimingSim::new(l2, cfg, L2Timing::baseline()).run(&mut spec2000::wupwise(1), 60_000)
    };
    let tight = run(1);
    let loose = run(1024);
    assert!(tight.mshr_stall_cycles > 0, "a 1-entry MSHR must stall");
    // The stalled issues push dependent completions later, costing cycles.
    assert!(
        tight.cycles > loose.cycles,
        "tight {} vs loose {}",
        tight.cycles,
        loose.cycles
    );
}
