//! The core timing model: an 8-wide machine whose memory-level parallelism
//! is bounded by the MSHR and by the workload's dependence structure.

use crate::{L2Timing, MemorySystem, SystemConfig};
use ldis_cache::{Hierarchy, SecondLevel};
use ldis_mem::{Access, AccessKind, SimRng};
use ldis_workloads::Workload;

/// The outcome of a timing simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Memory requests issued.
    pub memory_requests: u64,
    /// Cycles stalled on a full MSHR.
    pub mshr_stall_cycles: u64,
}

impl TimingResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A first-order out-of-order timing model (Section 6.1's execution-driven
/// simulator, reduced to what the IPC comparison needs):
///
/// * instructions retire at `width` per cycle;
/// * branch mispredictions cost a 15-cycle refill, applied at the
///   workload's misprediction rate;
/// * L2 hits pay the L2 latency only when the access is *dependent*
///   (feeding the next access); independent hits are hidden by the window;
/// * misses go through the DRAM bank / bus / MSHR model; dependent misses
///   stall the core until completion, independent ones overlap.
///
/// Baseline and distill runs use the identical core; only the L2
/// organization and its latency adders differ, so the IPC *delta* isolates
/// the cache effect exactly as the paper's Figure 9 does.
#[derive(Debug)]
pub struct TimingSim<L2> {
    hier: Hierarchy<L2>,
    cfg: SystemConfig,
    l2_timing: L2Timing,
    mem: MemorySystem,
    rng: SimRng,
    cycle: u64,
    mispredict_debt: f64,
}

impl<L2: SecondLevel> TimingSim<L2> {
    /// Creates a timing simulation around a cache hierarchy.
    pub fn new(l2: L2, cfg: SystemConfig, l2_timing: L2Timing) -> Self {
        let line_bytes = l2.geometry().line_bytes();
        let transfer = cfg.bus_transfer_cycles(line_bytes);
        TimingSim {
            hier: Hierarchy::hpca2007(l2),
            mem: MemorySystem::new(cfg.dram_banks, cfg.mem_latency, transfer, cfg.mshr_entries),
            // ldis: allow(S1, "the timing model's internal jitter stream is deliberately fixed (one TimingSim per run, not forked into workers); re-deriving it would shift cycle counts and break the frozen goldens")
            rng: SimRng::new(0x7131),
            cycle: 0,
            mispredict_debt: 0.0,
            cfg,
            l2_timing,
        }
    }

    /// The cache hierarchy (for reading statistics).
    pub fn hierarchy(&self) -> &Hierarchy<L2> {
        &self.hier
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Runs one access through the timed machine.
    pub fn step(&mut self, access: Access) {
        // Retire the instructions leading up to this access.
        let insts = access.insts.max(1) as u64;
        self.cycle += insts.div_ceil(self.cfg.width as u64);
        // Branch mispredictions: accumulate fractional debt so the rate is
        // honoured deterministically.
        self.mispredict_debt += insts as f64 * self.cfg.mispredicts_per_kinst / 1000.0;
        while self.mispredict_debt >= 1.0 {
            self.cycle += self.cfg.mispredict_penalty;
            self.mispredict_debt -= 1.0;
        }

        let trace = self.hier.access_traced(access);
        if trace.l1_hit {
            return; // L1 hits are pipelined.
        }
        // Instruction fetches that miss the L1I stall the front-end, so
        // they are always on the critical path; data accesses are
        // dependent with the workload's probability.
        let dependent =
            access.kind == AccessKind::InstrFetch || self.rng.chance(self.cfg.dependent_fraction);

        // L2 hit latency: visible only on the dependent path.
        let hit_latency = trace.l2_loc_hits as u64 * self.l2_timing.loc_hit_latency()
            + trace.l2_woc_hits as u64 * self.l2_timing.woc_hit_latency();
        if dependent {
            self.cycle += hit_latency;
        }

        // Misses go to memory.
        let geom = self.hier.l2().geometry();
        let line = geom.line_addr(access.addr);
        for _ in 0..trace.l2_misses {
            let start = self.cycle + self.l2_timing.loc_hit_latency();
            let (_, completion) = self.mem.fetch(start, line);
            if dependent {
                self.cycle = completion;
            }
        }
    }

    /// Runs `accesses` accesses of a workload and returns the result.
    pub fn run(&mut self, workload: &mut Workload, accesses: u64) -> TimingResult {
        use ldis_mem::TraceSource;
        for _ in 0..accesses {
            // Workloads are endless generators; stop early if one isn't.
            let Some(a) = workload.next_access() else {
                break;
            };
            self.step(a);
        }
        TimingResult {
            instructions: self.hier.stats().instructions,
            cycles: self.cycle,
            memory_requests: self.mem.requests,
            mshr_stall_cycles: self.mem.mshr_stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldis_cache::{BaselineL2, CacheConfig};
    use ldis_distill::{DistillCache, DistillConfig};
    use ldis_mem::LineGeometry;
    use ldis_workloads::spec2000;

    fn baseline_sim() -> TimingSim<BaselineL2> {
        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        TimingSim::new(l2, SystemConfig::hpca2007_baseline(), L2Timing::baseline())
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let mut sim = baseline_sim();
        let mut w = spec2000::apsi(1);
        let r = sim.run(&mut w, 20_000);
        let ipc = r.ipc();
        assert!(ipc > 0.0 && ipc <= 8.0, "ipc {ipc}");
    }

    #[test]
    fn memory_bound_workloads_have_lower_ipc() {
        let mut cache_friendly = baseline_sim();
        let friendly_ipc = cache_friendly.run(&mut spec2000::apsi(1), 30_000).ipc();
        let mut chaser = {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.9, 6.0);
            TimingSim::new(l2, cfg, L2Timing::baseline())
        };
        let chase_ipc = chaser.run(&mut spec2000::health(1), 30_000).ipc();
        assert!(
            chase_ipc < friendly_ipc / 2.0,
            "health {chase_ipc} vs apsi {friendly_ipc}"
        );
    }

    #[test]
    fn distill_improves_ipc_on_pointer_chasing() {
        let accesses = 200_000;
        let factors = crate::workload_factors("health");
        let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(factors.0, factors.1);

        let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        let mut base = TimingSim::new(l2, cfg, L2Timing::baseline());
        let base_ipc = base.run(&mut spec2000::health(3), accesses).ipc();

        let dc = DistillCache::new(DistillConfig::hpca2007_default());
        let mut dist = TimingSim::new(dc, cfg, L2Timing::distill());
        let dist_ipc = dist.run(&mut spec2000::health(3), accesses).ipc();

        assert!(
            dist_ipc > base_ipc * 1.1,
            "distill {dist_ipc} should beat baseline {base_ipc} by >10%"
        );
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let r1 = baseline_sim().run(&mut spec2000::twolf(5), 10_000);
        let r2 = baseline_sim().run(&mut spec2000::twolf(5), 10_000);
        assert_eq!(r1, r2);
    }

    #[test]
    fn mispredictions_slow_the_core() {
        let run_with = |rate: f64| {
            let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
            let cfg = SystemConfig::hpca2007_baseline().with_workload_factors(0.2, rate);
            TimingSim::new(l2, cfg, L2Timing::baseline())
                .run(&mut spec2000::apsi(1), 20_000)
                .ipc()
        };
        assert!(run_with(20.0) < run_with(0.0));
    }
}
