//! Timing-model configuration (Table 1 parameters).

/// Latency parameters of the second-level cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Timing {
    /// Hit latency in cycles (Table 1: 15).
    pub hit_cycles: u64,
    /// Extra tag-access cycles. The distill cache's larger tag store costs
    /// one extra cycle (Section 7.4, sized with Cacti).
    pub tag_extra_cycles: u64,
    /// Extra cycles to rearrange WOC words into line order before sending
    /// to the L1 (Section 7.4: 2 cycles).
    pub woc_rearrange_cycles: u64,
}

impl L2Timing {
    /// The baseline L2: 15-cycle hits, no extras.
    pub const fn baseline() -> Self {
        L2Timing {
            hit_cycles: 15,
            tag_extra_cycles: 0,
            woc_rearrange_cycles: 0,
        }
    }

    /// The distill cache: 15 + 1 tag cycles, +2 for WOC rearrangement.
    pub const fn distill() -> Self {
        L2Timing {
            hit_cycles: 15,
            tag_extra_cycles: 1,
            woc_rearrange_cycles: 2,
        }
    }

    /// Latency of an L2 access that hits in the line-organized store.
    pub const fn loc_hit_latency(&self) -> u64 {
        self.hit_cycles + self.tag_extra_cycles
    }

    /// Latency of an L2 access that hits in the word-organized store.
    pub const fn woc_hit_latency(&self) -> u64 {
        self.hit_cycles + self.tag_extra_cycles + self.woc_rearrange_cycles
    }
}

/// Core and memory-system parameters (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Issue width (8-wide).
    pub width: u32,
    /// Branch misprediction penalty in cycles (minimum 15).
    pub mispredict_penalty: u64,
    /// Branch mispredictions per kilo-instruction (workload dependent —
    /// the hybrid gshare/PAs predictor of Table 1 is summarized by a rate).
    pub mispredicts_per_kinst: f64,
    /// DRAM access latency in cycles (400).
    pub mem_latency: u64,
    /// Number of DRAM banks (32, conflicts modelled).
    pub dram_banks: u32,
    /// Maximum outstanding memory requests (32-entry MSHR).
    pub mshr_entries: u32,
    /// CPU cycles per bus beat (16 B-wide split-transaction bus at a 4:1
    /// frequency ratio → 4 CPU cycles per beat).
    pub bus_cycles_per_beat: u64,
    /// Bytes transferred per bus beat (16).
    pub bus_bytes_per_beat: u32,
    /// Fraction of L2-visible accesses whose result feeds the next access
    /// (pointer chasing ≈ 1, independent array sweeps ≈ 0). Controls how
    /// much miss latency the out-of-order window can hide.
    pub dependent_fraction: f64,
}

impl SystemConfig {
    /// Table 1's baseline processor with neutral workload factors.
    pub fn hpca2007_baseline() -> Self {
        SystemConfig {
            width: 8,
            mispredict_penalty: 15,
            mispredicts_per_kinst: 4.0,
            mem_latency: 400,
            dram_banks: 32,
            mshr_entries: 32,
            bus_cycles_per_beat: 4,
            bus_bytes_per_beat: 16,
            dependent_fraction: 0.4,
        }
    }

    /// Cycles the bus is busy transferring one line of `line_bytes`.
    pub fn bus_transfer_cycles(&self, line_bytes: u32) -> u64 {
        let beats = line_bytes.div_ceil(self.bus_bytes_per_beat) as u64;
        beats * self.bus_cycles_per_beat
    }

    /// Returns a copy with workload-specific factors.
    #[must_use]
    pub fn with_workload_factors(
        mut self,
        dependent_fraction: f64,
        mispredicts_per_kinst: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&dependent_fraction));
        assert!(mispredicts_per_kinst >= 0.0);
        self.dependent_fraction = dependent_fraction;
        self.mispredicts_per_kinst = mispredicts_per_kinst;
        self
    }
}

/// Per-benchmark core factors for the IPC experiments: how serial the miss
/// stream is and how often branches mispredict. Derived from each
/// benchmark's published character (pointer chases serialize; array code
/// overlaps; integer codes mispredict more).
pub fn workload_factors(benchmark: &str) -> (f64, f64) {
    match benchmark {
        "art" => (0.12, 2.0),
        "mcf" => (0.65, 8.0),
        "twolf" => (0.3, 10.0),
        "vpr" => (0.3, 9.0),
        "ammp" => (0.22, 4.0),
        "galgel" => (0.2, 1.0),
        "bzip2" => (0.35, 8.0),
        "facerec" => (0.22, 1.0),
        "parser" => (0.45, 9.0),
        "sixtrack" => (0.25, 2.0),
        "apsi" => (0.25, 2.0),
        "swim" => (0.15, 0.5),
        "vortex" => (0.45, 5.0),
        "gcc" => (0.3, 10.0),
        "wupwise" => (0.2, 1.0),
        "health" => (0.75, 6.0),
        _ => (0.4, 4.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_section_7_4() {
        let base = L2Timing::baseline();
        assert_eq!(base.loc_hit_latency(), 15);
        assert_eq!(base.woc_hit_latency(), 15);
        let distill = L2Timing::distill();
        assert_eq!(distill.loc_hit_latency(), 16);
        assert_eq!(distill.woc_hit_latency(), 18);
    }

    #[test]
    fn bus_transfer_of_a_line_takes_16_cycles() {
        let cfg = SystemConfig::hpca2007_baseline();
        assert_eq!(cfg.bus_transfer_cycles(64), 16);
        assert_eq!(cfg.bus_transfer_cycles(128), 32);
    }

    #[test]
    fn factors_cover_all_benchmarks() {
        for b in ldis_workloads::memory_intensive() {
            let (dep, br) = workload_factors(b.name);
            assert!((0.0..=1.0).contains(&dep), "{}", b.name);
            assert!(br >= 0.0);
        }
        // Unknown benchmarks get neutral defaults.
        assert_eq!(workload_factors("unknown"), (0.4, 4.0));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_dependent_fraction() {
        let _ = SystemConfig::hpca2007_baseline().with_workload_factors(1.5, 1.0);
    }
}
