//! Execution timing model for the IPC experiments (Figure 9).
//!
//! The paper measures IPC with an in-house execution-driven Alpha
//! simulator. This crate reproduces the *mechanism* that produces the IPC
//! deltas — miss counts filtered through memory-level parallelism and the
//! Table 1 memory system — with a first-order model:
//!
//! * [`SystemConfig`] — the Table 1 parameters (8-wide, 15-cycle branch
//!   penalty, 400-cycle DRAM over 32 banks, 32-entry MSHR, 16 B bus at
//!   4:1) plus two workload factors: dependence (how serial the miss
//!   stream is) and branch misprediction rate;
//! * [`L2Timing`] — baseline vs. distill latencies (+1 tag cycle, +2 WOC
//!   rearrangement cycles, Section 7.4);
//! * [`MemorySystem`] — DRAM banks with conflicts, split-transaction bus,
//!   MSHR bound;
//! * [`TimingSim`] — drives a [`Hierarchy`](ldis_cache::Hierarchy) and
//!   charges cycles per access.
//!
//! # Example
//!
//! ```
//! use ldis_cache::{BaselineL2, CacheConfig};
//! use ldis_mem::LineGeometry;
//! use ldis_timing::{L2Timing, SystemConfig, TimingSim};
//! use ldis_workloads::spec2000;
//!
//! let l2 = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
//! let mut sim = TimingSim::new(l2, SystemConfig::hpca2007_baseline(), L2Timing::baseline());
//! let result = sim.run(&mut spec2000::twolf(1), 10_000);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cpu;
mod dram;

pub use config::{workload_factors, L2Timing, SystemConfig};
pub use cpu::{TimingResult, TimingSim};
pub use dram::MemorySystem;
