//! The memory system: DRAM banks with conflicts, a split-transaction bus
//! and an MSHR-limited request window (Table 1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ldis_mem::LineAddr;

/// The DRAM + bus + MSHR model. Requests are issued with a start cycle and
/// return a completion cycle, accounting for bank conflicts (a bank serves
/// one request at a time), bus occupancy (one line transfer at a time) and
/// the MSHR bound (at most `mshr_entries` requests in flight).
#[derive(Clone, Debug)]
pub struct MemorySystem {
    banks: Vec<u64>,
    bus_free: u64,
    mem_latency: u64,
    transfer_cycles: u64,
    mshr_entries: usize,
    in_flight: BinaryHeap<Reverse<u64>>,
    /// Total requests issued.
    pub requests: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Cycles lost to bank conflicts.
    pub bank_conflict_cycles: u64,
}

impl MemorySystem {
    /// Creates a memory system.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `mshr_entries` is zero.
    pub fn new(banks: u32, mem_latency: u64, transfer_cycles: u64, mshr_entries: u32) -> Self {
        assert!(
            banks > 0 && mshr_entries > 0,
            "banks and MSHRs must be positive"
        );
        MemorySystem {
            banks: vec![0; banks as usize],
            bus_free: 0,
            mem_latency,
            transfer_cycles,
            mshr_entries: mshr_entries as usize,
            in_flight: BinaryHeap::new(),
            requests: 0,
            mshr_stall_cycles: 0,
            bank_conflict_cycles: 0,
        }
    }

    /// Issues a line fetch at `cycle`; returns `(issue_cycle, completion)`.
    /// `issue_cycle ≥ cycle` accounts for a full MSHR; the completion is
    /// when the critical word is back at the L2.
    pub fn fetch(&mut self, cycle: u64, line: LineAddr) -> (u64, u64) {
        self.requests += 1;
        // Retire whatever has completed by now.
        while let Some(&Reverse(done)) = self.in_flight.peek() {
            if done <= cycle {
                self.in_flight.pop();
            } else {
                break;
            }
        }
        // MSHR bound: wait for the earliest completion if full.
        let mut issue = cycle;
        if self.in_flight.len() >= self.mshr_entries {
            if let Some(Reverse(earliest)) = self.in_flight.pop() {
                if earliest > issue {
                    self.mshr_stall_cycles += earliest - issue;
                    issue = earliest;
                }
            }
        }
        // Bank conflict: the bank serves one request at a time.
        // `bank < banks.len()` by the modulo, so the `get` fallbacks are
        // dead; an idle (0) busy-time leaves `issue` unchanged.
        let bank = (line.raw() % self.banks.len() as u64) as usize;
        let bank_start = issue.max(self.banks.get(bank).copied().unwrap_or(0));
        self.bank_conflict_cycles += bank_start - issue;
        let data_ready = bank_start + self.mem_latency;
        if let Some(slot) = self.banks.get_mut(bank) {
            *slot = data_ready;
        }
        // Bus: one line transfer at a time (split-transaction).
        let bus_start = data_ready.max(self.bus_free);
        let completion = bus_start + self.transfer_cycles;
        self.bus_free = completion;
        self.in_flight.push(Reverse(completion));
        (issue, completion)
    }

    /// Requests currently in flight (for tests).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(32, 400, 16, 32)
    }

    #[test]
    fn single_fetch_latency() {
        let mut m = mem();
        let (issue, done) = m.fetch(100, LineAddr::new(5));
        assert_eq!(issue, 100);
        assert_eq!(done, 100 + 400 + 16);
    }

    #[test]
    fn different_banks_overlap() {
        let mut m = mem();
        let (_, d1) = m.fetch(0, LineAddr::new(0));
        let (_, d2) = m.fetch(0, LineAddr::new(1));
        // Bank latency overlaps; only the bus serializes the transfers.
        assert_eq!(d1, 416);
        assert_eq!(d2, 432);
        assert_eq!(m.bank_conflict_cycles, 0);
    }

    #[test]
    fn same_bank_conflicts() {
        let mut m = mem();
        let (_, d1) = m.fetch(0, LineAddr::new(0));
        let (_, d2) = m.fetch(0, LineAddr::new(32)); // same bank (32 banks)
        assert_eq!(d1, 416);
        assert!(d2 >= 800, "second request waits for the bank: {d2}");
        assert!(m.bank_conflict_cycles > 0);
    }

    #[test]
    fn mshr_bound_limits_outstanding() {
        let mut m = MemorySystem::new(64, 400, 0, 4);
        for i in 0..4 {
            m.fetch(0, LineAddr::new(i));
        }
        assert_eq!(m.in_flight(), 4);
        let (issue, _) = m.fetch(0, LineAddr::new(100));
        assert!(
            issue >= 400,
            "5th request must wait for an MSHR, got {issue}"
        );
        assert!(m.mshr_stall_cycles > 0);
    }

    #[test]
    fn completed_requests_free_mshrs() {
        let mut m = MemorySystem::new(64, 400, 0, 2);
        m.fetch(0, LineAddr::new(0));
        m.fetch(0, LineAddr::new(1));
        // Far in the future both are done: no stall.
        let (issue, _) = m.fetch(10_000, LineAddr::new(2));
        assert_eq!(issue, 10_000);
        assert_eq!(m.mshr_stall_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_banks() {
        let _ = MemorySystem::new(0, 400, 16, 32);
    }
}
