//! # line-distillation
//!
//! A full reproduction of *"Line Distillation: Increasing Cache Capacity by
//! Filtering Unused Words in Cache Lines"* (Qureshi, Suleman & Patt,
//! HPCA 2007) as a Rust workspace.
//!
//! This facade crate re-exports every member crate under one roof so
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`mem`] — addresses, geometry, accesses, footprints, RNG, statistics;
//! * [`cache`] — set-associative substrate, sectored L1D, baseline L2,
//!   hierarchy driver;
//! * [`distill`] — the paper's contribution: the distill cache (LOC + WOC),
//!   median-threshold filtering, the reverter circuit, the storage model;
//! * [`compress`] — the Table-4 encoder, compressed cache (CMPR) and
//!   footprint-aware compression (FAC);
//! * [`sfp`] — the spatial-footprint-predictor comparator of Figure 13;
//! * [`mrc`] — the single-pass Mattson miss-ratio-curve profiler used by
//!   the capacity sweeps and the differential-oracle tests;
//! * [`workloads`] — the 16 + 11 synthetic benchmark models;
//! * [`timing`] — the IPC model (Figure 9);
//! * [`experiments`] — one entry point per table/figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use line_distillation::distill::{DistillCache, DistillConfig};
//! use line_distillation::cache::{Hierarchy, SecondLevel};
//! use line_distillation::workloads::{spec2000, TraceLength};
//!
//! let mut workload = spec2000::health(1);
//! let l2 = DistillCache::new(DistillConfig::hpca2007_default());
//! let mut hier = Hierarchy::hpca2007(l2);
//! workload.drive(&mut hier, TraceLength::accesses(300_000));
//! // Distilled words of evicted lines are served from the WOC.
//! assert!(hier.l2().stats().woc_hits > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ldis_cache as cache;
pub use ldis_compress as compress;
pub use ldis_distill as distill;
pub use ldis_experiments as experiments;
pub use ldis_mem as mem;
pub use ldis_mrc as mrc;
pub use ldis_sfp as sfp;
pub use ldis_timing as timing;
pub use ldis_workloads as workloads;
