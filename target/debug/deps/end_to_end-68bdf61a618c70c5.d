/root/repo/target/debug/deps/end_to_end-68bdf61a618c70c5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-68bdf61a618c70c5: tests/end_to_end.rs

tests/end_to_end.rs:
