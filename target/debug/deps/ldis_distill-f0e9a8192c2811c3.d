/root/repo/target/debug/deps/ldis_distill-f0e9a8192c2811c3.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

/root/repo/target/debug/deps/libldis_distill-f0e9a8192c2811c3.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

/root/repo/target/debug/deps/libldis_distill-f0e9a8192c2811c3.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/costs.rs:
crates/core/src/distill_cache.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/median.rs:
crates/core/src/overhead.rs:
crates/core/src/reverter.rs:
crates/core/src/woc.rs:
crates/core/src/word_store.rs:
