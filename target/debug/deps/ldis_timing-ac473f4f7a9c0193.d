/root/repo/target/debug/deps/ldis_timing-ac473f4f7a9c0193.d: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

/root/repo/target/debug/deps/libldis_timing-ac473f4f7a9c0193.rlib: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

/root/repo/target/debug/deps/libldis_timing-ac473f4f7a9c0193.rmeta: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

crates/timing/src/lib.rs:
crates/timing/src/config.rs:
crates/timing/src/cpu.rs:
crates/timing/src/dram.rs:
