/root/repo/target/debug/deps/line_distillation-77e09fc4333fb4a5.d: src/lib.rs

/root/repo/target/debug/deps/libline_distillation-77e09fc4333fb4a5.rlib: src/lib.rs

/root/repo/target/debug/deps/libline_distillation-77e09fc4333fb4a5.rmeta: src/lib.rs

src/lib.rs:
