/root/repo/target/debug/deps/ldis_mem-22c840ba21b6f11b.d: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs

/root/repo/target/debug/deps/libldis_mem-22c840ba21b6f11b.rlib: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs

/root/repo/target/debug/deps/libldis_mem-22c840ba21b6f11b.rmeta: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs

crates/mem/src/lib.rs:
crates/mem/src/access.rs:
crates/mem/src/addr.rs:
crates/mem/src/footprint.rs:
crates/mem/src/geometry.rs:
crates/mem/src/rng.rs:
crates/mem/src/stats.rs:
crates/mem/src/trace.rs:
crates/mem/src/trace_io.rs:
