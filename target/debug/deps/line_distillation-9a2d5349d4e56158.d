/root/repo/target/debug/deps/line_distillation-9a2d5349d4e56158.d: src/lib.rs

/root/repo/target/debug/deps/line_distillation-9a2d5349d4e56158: src/lib.rs

src/lib.rs:
