/root/repo/target/debug/deps/reverter_dynamics-f8bef6a126bc0937.d: tests/reverter_dynamics.rs

/root/repo/target/debug/deps/reverter_dynamics-f8bef6a126bc0937: tests/reverter_dynamics.rs

tests/reverter_dynamics.rs:
