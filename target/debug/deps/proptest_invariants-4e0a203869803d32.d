/root/repo/target/debug/deps/proptest_invariants-4e0a203869803d32.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-4e0a203869803d32: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
