/root/repo/target/debug/deps/ldis_experiments-0aea5cd999abcf0a.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/appendix.rs crates/experiments/src/costs.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig13.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/linesize.rs crates/experiments/src/motivation.rs crates/experiments/src/report.rs crates/experiments/src/resilience.rs crates/experiments/src/runner.rs crates/experiments/src/table3.rs

/root/repo/target/debug/deps/libldis_experiments-0aea5cd999abcf0a.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/appendix.rs crates/experiments/src/costs.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig13.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/linesize.rs crates/experiments/src/motivation.rs crates/experiments/src/report.rs crates/experiments/src/resilience.rs crates/experiments/src/runner.rs crates/experiments/src/table3.rs

/root/repo/target/debug/deps/libldis_experiments-0aea5cd999abcf0a.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/appendix.rs crates/experiments/src/costs.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig13.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/linesize.rs crates/experiments/src/motivation.rs crates/experiments/src/report.rs crates/experiments/src/resilience.rs crates/experiments/src/runner.rs crates/experiments/src/table3.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/appendix.rs:
crates/experiments/src/costs.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/linesize.rs:
crates/experiments/src/motivation.rs:
crates/experiments/src/report.rs:
crates/experiments/src/resilience.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/table3.rs:
