/root/repo/target/debug/deps/ldis_sfp-fa32d6fbde304269.d: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

/root/repo/target/debug/deps/libldis_sfp-fa32d6fbde304269.rlib: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

/root/repo/target/debug/deps/libldis_sfp-fa32d6fbde304269.rmeta: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

crates/sfp/src/lib.rs:
crates/sfp/src/predictor.rs:
crates/sfp/src/sfp_cache.rs:
