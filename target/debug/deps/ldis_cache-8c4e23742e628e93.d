/root/repo/target/debug/deps/ldis_cache-8c4e23742e628e93.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libldis_cache-8c4e23742e628e93.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libldis_cache-8c4e23742e628e93.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/config.rs:
crates/cache/src/entry.rs:
crates/cache/src/health.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/second_level.rs:
crates/cache/src/sectored.rs:
crates/cache/src/set.rs:
crates/cache/src/stats.rs:
