/root/repo/target/debug/deps/ldis_compress-6dbcaeae7fe3fac2.d: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

/root/repo/target/debug/deps/libldis_compress-6dbcaeae7fe3fac2.rlib: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

/root/repo/target/debug/deps/libldis_compress-6dbcaeae7fe3fac2.rmeta: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/cmpr.rs:
crates/compress/src/fac.rs:
crates/compress/src/fpc.rs:
