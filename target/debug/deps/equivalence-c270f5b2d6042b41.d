/root/repo/target/debug/deps/equivalence-c270f5b2d6042b41.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-c270f5b2d6042b41: tests/equivalence.rs

tests/equivalence.rs:
