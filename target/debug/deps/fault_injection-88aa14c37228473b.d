/root/repo/target/debug/deps/fault_injection-88aa14c37228473b.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-88aa14c37228473b: tests/fault_injection.rs

tests/fault_injection.rs:
