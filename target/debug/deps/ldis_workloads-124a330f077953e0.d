/root/repo/target/debug/deps/ldis_workloads-124a330f077953e0.d: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

/root/repo/target/debug/deps/libldis_workloads-124a330f077953e0.rlib: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

/root/repo/target/debug/deps/libldis_workloads-124a330f077953e0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

crates/workloads/src/lib.rs:
crates/workloads/src/insensitive.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/spec2000.rs:
crates/workloads/src/streams.rs:
crates/workloads/src/workload.rs:
