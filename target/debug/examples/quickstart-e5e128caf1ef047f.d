/root/repo/target/debug/examples/quickstart-e5e128caf1ef047f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e5e128caf1ef047f: examples/quickstart.rs

examples/quickstart.rs:
