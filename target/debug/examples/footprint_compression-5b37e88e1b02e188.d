/root/repo/target/debug/examples/footprint_compression-5b37e88e1b02e188.d: examples/footprint_compression.rs

/root/repo/target/debug/examples/footprint_compression-5b37e88e1b02e188: examples/footprint_compression.rs

examples/footprint_compression.rs:
