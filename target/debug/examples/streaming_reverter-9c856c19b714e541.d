/root/repo/target/debug/examples/streaming_reverter-9c856c19b714e541.d: examples/streaming_reverter.rs

/root/repo/target/debug/examples/streaming_reverter-9c856c19b714e541: examples/streaming_reverter.rs

examples/streaming_reverter.rs:
