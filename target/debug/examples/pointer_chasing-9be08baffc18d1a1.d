/root/repo/target/debug/examples/pointer_chasing-9be08baffc18d1a1.d: examples/pointer_chasing.rs

/root/repo/target/debug/examples/pointer_chasing-9be08baffc18d1a1: examples/pointer_chasing.rs

examples/pointer_chasing.rs:
