/root/repo/target/release/examples/pointer_chasing-a0a2104224fab917.d: examples/pointer_chasing.rs Cargo.toml

/root/repo/target/release/examples/libpointer_chasing-a0a2104224fab917.rmeta: examples/pointer_chasing.rs Cargo.toml

examples/pointer_chasing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
