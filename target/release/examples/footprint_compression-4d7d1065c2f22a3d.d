/root/repo/target/release/examples/footprint_compression-4d7d1065c2f22a3d.d: examples/footprint_compression.rs

/root/repo/target/release/examples/footprint_compression-4d7d1065c2f22a3d: examples/footprint_compression.rs

examples/footprint_compression.rs:
