/root/repo/target/release/examples/streaming_reverter-c6f12104fd255e29.d: examples/streaming_reverter.rs

/root/repo/target/release/examples/streaming_reverter-c6f12104fd255e29: examples/streaming_reverter.rs

examples/streaming_reverter.rs:
