/root/repo/target/release/examples/pointer_chasing-6d6b5fadb51cb9a2.d: examples/pointer_chasing.rs

/root/repo/target/release/examples/pointer_chasing-6d6b5fadb51cb9a2: examples/pointer_chasing.rs

examples/pointer_chasing.rs:
