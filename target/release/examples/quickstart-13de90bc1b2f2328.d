/root/repo/target/release/examples/quickstart-13de90bc1b2f2328.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-13de90bc1b2f2328: examples/quickstart.rs

examples/quickstart.rs:
