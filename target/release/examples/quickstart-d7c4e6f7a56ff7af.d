/root/repo/target/release/examples/quickstart-d7c4e6f7a56ff7af.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-d7c4e6f7a56ff7af.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
