/root/repo/target/release/examples/streaming_reverter-2036de6a42c3d962.d: examples/streaming_reverter.rs Cargo.toml

/root/repo/target/release/examples/libstreaming_reverter-2036de6a42c3d962.rmeta: examples/streaming_reverter.rs Cargo.toml

examples/streaming_reverter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
