/root/repo/target/release/examples/readme_resilience_probe-be99814d02f35148.d: examples/readme_resilience_probe.rs

/root/repo/target/release/examples/readme_resilience_probe-be99814d02f35148: examples/readme_resilience_probe.rs

examples/readme_resilience_probe.rs:
