/root/repo/target/release/examples/footprint_compression-d487d9c688876e36.d: examples/footprint_compression.rs Cargo.toml

/root/repo/target/release/examples/libfootprint_compression-d487d9c688876e36.rmeta: examples/footprint_compression.rs Cargo.toml

examples/footprint_compression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
