/root/repo/target/release/deps/ldis_trace-5dc03daa3bc76f20.d: crates/experiments/src/bin/trace.rs

/root/repo/target/release/deps/ldis_trace-5dc03daa3bc76f20: crates/experiments/src/bin/trace.rs

crates/experiments/src/bin/trace.rs:
