/root/repo/target/release/deps/ldis_distill-e34852f5305d0dde.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs Cargo.toml

/root/repo/target/release/deps/libldis_distill-e34852f5305d0dde.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/costs.rs:
crates/core/src/distill_cache.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/median.rs:
crates/core/src/overhead.rs:
crates/core/src/reverter.rs:
crates/core/src/woc.rs:
crates/core/src/word_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
