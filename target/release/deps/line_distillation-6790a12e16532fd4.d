/root/repo/target/release/deps/line_distillation-6790a12e16532fd4.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libline_distillation-6790a12e16532fd4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
