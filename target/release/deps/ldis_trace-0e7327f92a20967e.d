/root/repo/target/release/deps/ldis_trace-0e7327f92a20967e.d: crates/experiments/src/bin/trace.rs Cargo.toml

/root/repo/target/release/deps/libldis_trace-0e7327f92a20967e.rmeta: crates/experiments/src/bin/trace.rs Cargo.toml

crates/experiments/src/bin/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
