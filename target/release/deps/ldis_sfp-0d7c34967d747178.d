/root/repo/target/release/deps/ldis_sfp-0d7c34967d747178.d: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs Cargo.toml

/root/repo/target/release/deps/libldis_sfp-0d7c34967d747178.rmeta: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs Cargo.toml

crates/sfp/src/lib.rs:
crates/sfp/src/predictor.rs:
crates/sfp/src/sfp_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
