/root/repo/target/release/deps/properties-b8bfe848210b787f.d: crates/timing/tests/properties.rs

/root/repo/target/release/deps/properties-b8bfe848210b787f: crates/timing/tests/properties.rs

crates/timing/tests/properties.rs:
