/root/repo/target/release/deps/line_distillation-e3f01470b29544e8.d: src/lib.rs

/root/repo/target/release/deps/libline_distillation-e3f01470b29544e8.rlib: src/lib.rs

/root/repo/target/release/deps/libline_distillation-e3f01470b29544e8.rmeta: src/lib.rs

src/lib.rs:
