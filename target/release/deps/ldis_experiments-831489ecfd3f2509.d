/root/repo/target/release/deps/ldis_experiments-831489ecfd3f2509.d: crates/experiments/src/bin/main.rs

/root/repo/target/release/deps/ldis_experiments-831489ecfd3f2509: crates/experiments/src/bin/main.rs

crates/experiments/src/bin/main.rs:
