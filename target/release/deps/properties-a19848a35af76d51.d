/root/repo/target/release/deps/properties-a19848a35af76d51.d: crates/mem/tests/properties.rs

/root/repo/target/release/deps/properties-a19848a35af76d51: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
