/root/repo/target/release/deps/properties-9b9a82f4185fa599.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-9b9a82f4185fa599.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
