/root/repo/target/release/deps/proptest_invariants-1fb1768bd8d14d86.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/release/deps/libproptest_invariants-1fb1768bd8d14d86.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
