/root/repo/target/release/deps/properties-f0c3ec5fc31444ea.d: crates/workloads/tests/properties.rs

/root/repo/target/release/deps/properties-f0c3ec5fc31444ea: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
