/root/repo/target/release/deps/properties-910223c05d1c99f3.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-910223c05d1c99f3.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
