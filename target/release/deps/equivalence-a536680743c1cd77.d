/root/repo/target/release/deps/equivalence-a536680743c1cd77.d: tests/equivalence.rs

/root/repo/target/release/deps/equivalence-a536680743c1cd77: tests/equivalence.rs

tests/equivalence.rs:
