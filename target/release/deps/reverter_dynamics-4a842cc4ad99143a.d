/root/repo/target/release/deps/reverter_dynamics-4a842cc4ad99143a.d: tests/reverter_dynamics.rs

/root/repo/target/release/deps/reverter_dynamics-4a842cc4ad99143a: tests/reverter_dynamics.rs

tests/reverter_dynamics.rs:
