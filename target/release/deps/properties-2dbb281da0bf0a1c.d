/root/repo/target/release/deps/properties-2dbb281da0bf0a1c.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-2dbb281da0bf0a1c: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
