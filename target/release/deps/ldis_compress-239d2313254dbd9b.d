/root/repo/target/release/deps/ldis_compress-239d2313254dbd9b.d: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

/root/repo/target/release/deps/libldis_compress-239d2313254dbd9b.rlib: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

/root/repo/target/release/deps/libldis_compress-239d2313254dbd9b.rmeta: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/cmpr.rs:
crates/compress/src/fac.rs:
crates/compress/src/fpc.rs:
