/root/repo/target/release/deps/fault_injection-00d5a3a53296f150.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-00d5a3a53296f150: tests/fault_injection.rs

tests/fault_injection.rs:
