/root/repo/target/release/deps/ldis_compress-015154bae9dc22fa.d: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

/root/repo/target/release/deps/ldis_compress-015154bae9dc22fa: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/cmpr.rs:
crates/compress/src/fac.rs:
crates/compress/src/fpc.rs:
