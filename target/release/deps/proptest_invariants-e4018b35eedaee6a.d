/root/repo/target/release/deps/proptest_invariants-e4018b35eedaee6a.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-e4018b35eedaee6a: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
