/root/repo/target/release/deps/equivalence-af2442a38e7dc651.d: tests/equivalence.rs Cargo.toml

/root/repo/target/release/deps/libequivalence-af2442a38e7dc651.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
