/root/repo/target/release/deps/ldis_timing-71c5466a0b14c027.d: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

/root/repo/target/release/deps/ldis_timing-71c5466a0b14c027: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

crates/timing/src/lib.rs:
crates/timing/src/config.rs:
crates/timing/src/cpu.rs:
crates/timing/src/dram.rs:
