/root/repo/target/release/deps/ldis_workloads-b6f370c167268b7f.d: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

/root/repo/target/release/deps/libldis_workloads-b6f370c167268b7f.rlib: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

/root/repo/target/release/deps/libldis_workloads-b6f370c167268b7f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

crates/workloads/src/lib.rs:
crates/workloads/src/insensitive.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/spec2000.rs:
crates/workloads/src/streams.rs:
crates/workloads/src/workload.rs:
