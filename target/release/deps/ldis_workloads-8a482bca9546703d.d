/root/repo/target/release/deps/ldis_workloads-8a482bca9546703d.d: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libldis_workloads-8a482bca9546703d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/insensitive.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/spec2000.rs:
crates/workloads/src/streams.rs:
crates/workloads/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
