/root/repo/target/release/deps/properties-c0b1f4bae3e68d52.d: crates/compress/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-c0b1f4bae3e68d52.rmeta: crates/compress/tests/properties.rs Cargo.toml

crates/compress/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
