/root/repo/target/release/deps/properties-ddca79936696d463.d: crates/sfp/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-ddca79936696d463.rmeta: crates/sfp/tests/properties.rs Cargo.toml

crates/sfp/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
