/root/repo/target/release/deps/properties-e3f1acc70eb034b6.d: crates/sfp/tests/properties.rs

/root/repo/target/release/deps/properties-e3f1acc70eb034b6: crates/sfp/tests/properties.rs

crates/sfp/tests/properties.rs:
