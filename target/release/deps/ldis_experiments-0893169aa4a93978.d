/root/repo/target/release/deps/ldis_experiments-0893169aa4a93978.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/appendix.rs crates/experiments/src/costs.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig13.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/linesize.rs crates/experiments/src/motivation.rs crates/experiments/src/report.rs crates/experiments/src/resilience.rs crates/experiments/src/runner.rs crates/experiments/src/table3.rs Cargo.toml

/root/repo/target/release/deps/libldis_experiments-0893169aa4a93978.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/appendix.rs crates/experiments/src/costs.rs crates/experiments/src/fig10.rs crates/experiments/src/fig11.rs crates/experiments/src/fig13.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/fig8.rs crates/experiments/src/fig9.rs crates/experiments/src/linesize.rs crates/experiments/src/motivation.rs crates/experiments/src/report.rs crates/experiments/src/resilience.rs crates/experiments/src/runner.rs crates/experiments/src/table3.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/appendix.rs:
crates/experiments/src/costs.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig11.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/fig8.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/linesize.rs:
crates/experiments/src/motivation.rs:
crates/experiments/src/report.rs:
crates/experiments/src/resilience.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
