/root/repo/target/release/deps/ldis_experiments-56a4d173f69af84d.d: crates/experiments/src/bin/main.rs Cargo.toml

/root/repo/target/release/deps/libldis_experiments-56a4d173f69af84d.rmeta: crates/experiments/src/bin/main.rs Cargo.toml

crates/experiments/src/bin/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
