/root/repo/target/release/deps/reverter_dynamics-bbb7cad889793c85.d: tests/reverter_dynamics.rs Cargo.toml

/root/repo/target/release/deps/libreverter_dynamics-bbb7cad889793c85.rmeta: tests/reverter_dynamics.rs Cargo.toml

tests/reverter_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
