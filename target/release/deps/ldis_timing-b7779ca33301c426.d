/root/repo/target/release/deps/ldis_timing-b7779ca33301c426.d: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs Cargo.toml

/root/repo/target/release/deps/libldis_timing-b7779ca33301c426.rmeta: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/config.rs:
crates/timing/src/cpu.rs:
crates/timing/src/dram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
