/root/repo/target/release/deps/end_to_end-48c764585c03bd3a.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-48c764585c03bd3a: tests/end_to_end.rs

tests/end_to_end.rs:
