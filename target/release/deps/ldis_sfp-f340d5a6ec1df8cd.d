/root/repo/target/release/deps/ldis_sfp-f340d5a6ec1df8cd.d: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

/root/repo/target/release/deps/ldis_sfp-f340d5a6ec1df8cd: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

crates/sfp/src/lib.rs:
crates/sfp/src/predictor.rs:
crates/sfp/src/sfp_cache.rs:
