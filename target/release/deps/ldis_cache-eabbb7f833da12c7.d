/root/repo/target/release/deps/ldis_cache-eabbb7f833da12c7.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/ldis_cache-eabbb7f833da12c7: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/config.rs:
crates/cache/src/entry.rs:
crates/cache/src/health.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/second_level.rs:
crates/cache/src/sectored.rs:
crates/cache/src/set.rs:
crates/cache/src/stats.rs:
