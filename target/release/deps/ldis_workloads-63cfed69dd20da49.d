/root/repo/target/release/deps/ldis_workloads-63cfed69dd20da49.d: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

/root/repo/target/release/deps/ldis_workloads-63cfed69dd20da49: crates/workloads/src/lib.rs crates/workloads/src/insensitive.rs crates/workloads/src/profile.rs crates/workloads/src/spec2000.rs crates/workloads/src/streams.rs crates/workloads/src/workload.rs

crates/workloads/src/lib.rs:
crates/workloads/src/insensitive.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/spec2000.rs:
crates/workloads/src/streams.rs:
crates/workloads/src/workload.rs:
