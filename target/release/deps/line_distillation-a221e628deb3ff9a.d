/root/repo/target/release/deps/line_distillation-a221e628deb3ff9a.d: src/lib.rs

/root/repo/target/release/deps/line_distillation-a221e628deb3ff9a: src/lib.rs

src/lib.rs:
