/root/repo/target/release/deps/properties-bebd5dce9b55e2a2.d: crates/timing/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-bebd5dce9b55e2a2.rmeta: crates/timing/tests/properties.rs Cargo.toml

crates/timing/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
