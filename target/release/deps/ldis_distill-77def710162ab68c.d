/root/repo/target/release/deps/ldis_distill-77def710162ab68c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

/root/repo/target/release/deps/libldis_distill-77def710162ab68c.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

/root/repo/target/release/deps/libldis_distill-77def710162ab68c.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/costs.rs crates/core/src/distill_cache.rs crates/core/src/error.rs crates/core/src/fault.rs crates/core/src/median.rs crates/core/src/overhead.rs crates/core/src/reverter.rs crates/core/src/woc.rs crates/core/src/word_store.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/costs.rs:
crates/core/src/distill_cache.rs:
crates/core/src/error.rs:
crates/core/src/fault.rs:
crates/core/src/median.rs:
crates/core/src/overhead.rs:
crates/core/src/reverter.rs:
crates/core/src/woc.rs:
crates/core/src/word_store.rs:
