/root/repo/target/release/deps/ldis_trace-c385dc479f934bd3.d: crates/experiments/src/bin/trace.rs

/root/repo/target/release/deps/ldis_trace-c385dc479f934bd3: crates/experiments/src/bin/trace.rs

crates/experiments/src/bin/trace.rs:
