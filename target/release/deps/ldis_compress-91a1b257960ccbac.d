/root/repo/target/release/deps/ldis_compress-91a1b257960ccbac.d: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs Cargo.toml

/root/repo/target/release/deps/libldis_compress-91a1b257960ccbac.rmeta: crates/compress/src/lib.rs crates/compress/src/cmpr.rs crates/compress/src/fac.rs crates/compress/src/fpc.rs Cargo.toml

crates/compress/src/lib.rs:
crates/compress/src/cmpr.rs:
crates/compress/src/fac.rs:
crates/compress/src/fpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
