/root/repo/target/release/deps/line_distillation-ff6ab03bb3afc322.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libline_distillation-ff6ab03bb3afc322.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
