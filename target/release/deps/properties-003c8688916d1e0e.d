/root/repo/target/release/deps/properties-003c8688916d1e0e.d: crates/workloads/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-003c8688916d1e0e.rmeta: crates/workloads/tests/properties.rs Cargo.toml

crates/workloads/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
