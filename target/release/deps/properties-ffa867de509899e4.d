/root/repo/target/release/deps/properties-ffa867de509899e4.d: crates/cache/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-ffa867de509899e4.rmeta: crates/cache/tests/properties.rs Cargo.toml

crates/cache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
