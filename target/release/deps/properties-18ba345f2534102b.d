/root/repo/target/release/deps/properties-18ba345f2534102b.d: crates/cache/tests/properties.rs

/root/repo/target/release/deps/properties-18ba345f2534102b: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
