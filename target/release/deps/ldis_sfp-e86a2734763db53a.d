/root/repo/target/release/deps/ldis_sfp-e86a2734763db53a.d: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

/root/repo/target/release/deps/libldis_sfp-e86a2734763db53a.rlib: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

/root/repo/target/release/deps/libldis_sfp-e86a2734763db53a.rmeta: crates/sfp/src/lib.rs crates/sfp/src/predictor.rs crates/sfp/src/sfp_cache.rs

crates/sfp/src/lib.rs:
crates/sfp/src/predictor.rs:
crates/sfp/src/sfp_cache.rs:
