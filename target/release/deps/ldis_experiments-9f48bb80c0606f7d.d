/root/repo/target/release/deps/ldis_experiments-9f48bb80c0606f7d.d: crates/experiments/src/bin/main.rs

/root/repo/target/release/deps/ldis_experiments-9f48bb80c0606f7d: crates/experiments/src/bin/main.rs

crates/experiments/src/bin/main.rs:
