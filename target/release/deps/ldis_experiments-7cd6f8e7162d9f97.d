/root/repo/target/release/deps/ldis_experiments-7cd6f8e7162d9f97.d: crates/experiments/src/bin/main.rs Cargo.toml

/root/repo/target/release/deps/libldis_experiments-7cd6f8e7162d9f97.rmeta: crates/experiments/src/bin/main.rs Cargo.toml

crates/experiments/src/bin/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
