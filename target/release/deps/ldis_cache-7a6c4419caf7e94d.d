/root/repo/target/release/deps/ldis_cache-7a6c4419caf7e94d.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libldis_cache-7a6c4419caf7e94d.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/config.rs crates/cache/src/entry.rs crates/cache/src/health.rs crates/cache/src/hierarchy.rs crates/cache/src/second_level.rs crates/cache/src/sectored.rs crates/cache/src/set.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/config.rs:
crates/cache/src/entry.rs:
crates/cache/src/health.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/second_level.rs:
crates/cache/src/sectored.rs:
crates/cache/src/set.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
