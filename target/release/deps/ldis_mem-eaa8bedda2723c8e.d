/root/repo/target/release/deps/ldis_mem-eaa8bedda2723c8e.d: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs

/root/repo/target/release/deps/ldis_mem-eaa8bedda2723c8e: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs

crates/mem/src/lib.rs:
crates/mem/src/access.rs:
crates/mem/src/addr.rs:
crates/mem/src/footprint.rs:
crates/mem/src/geometry.rs:
crates/mem/src/rng.rs:
crates/mem/src/stats.rs:
crates/mem/src/trace.rs:
crates/mem/src/trace_io.rs:
