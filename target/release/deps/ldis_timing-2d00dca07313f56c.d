/root/repo/target/release/deps/ldis_timing-2d00dca07313f56c.d: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

/root/repo/target/release/deps/libldis_timing-2d00dca07313f56c.rlib: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

/root/repo/target/release/deps/libldis_timing-2d00dca07313f56c.rmeta: crates/timing/src/lib.rs crates/timing/src/config.rs crates/timing/src/cpu.rs crates/timing/src/dram.rs

crates/timing/src/lib.rs:
crates/timing/src/config.rs:
crates/timing/src/cpu.rs:
crates/timing/src/dram.rs:
