/root/repo/target/release/deps/ldis_mem-575942fc1f8f3b4f.d: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs Cargo.toml

/root/repo/target/release/deps/libldis_mem-575942fc1f8f3b4f.rmeta: crates/mem/src/lib.rs crates/mem/src/access.rs crates/mem/src/addr.rs crates/mem/src/footprint.rs crates/mem/src/geometry.rs crates/mem/src/rng.rs crates/mem/src/stats.rs crates/mem/src/trace.rs crates/mem/src/trace_io.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/access.rs:
crates/mem/src/addr.rs:
crates/mem/src/footprint.rs:
crates/mem/src/geometry.rs:
crates/mem/src/rng.rs:
crates/mem/src/stats.rs:
crates/mem/src/trace.rs:
crates/mem/src/trace_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
