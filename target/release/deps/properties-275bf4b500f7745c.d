/root/repo/target/release/deps/properties-275bf4b500f7745c.d: crates/compress/tests/properties.rs

/root/repo/target/release/deps/properties-275bf4b500f7745c: crates/compress/tests/properties.rs

crates/compress/tests/properties.rs:
