//! End-to-end dynamics of the reverter circuit (Figure 5's mechanism):
//! workload-driven behavior plus the exact hysteresis arithmetic of the
//! PSEL counter (saturation, the 64/192 thresholds, forced decisions).

use line_distillation::cache::Hierarchy;
use line_distillation::distill::{DistillCache, DistillConfig, Reverter, ReverterConfig};
use line_distillation::mem::{LineAddr, TraceSource};
use line_distillation::workloads::{spec2000, TraceLength};

/// A reverter over a small 64-set cache with the paper's default policy
/// (8-bit PSEL, disable below 64, enable above 192).
fn small_reverter() -> Reverter {
    Reverter::new(ReverterConfig::default(), 64, 8)
}

/// Revisiting one line makes the ATD hit from the second access on, so
/// `distill_missed = true` decrements PSEL by one per access.
fn sink_one(r: &mut Reverter) {
    r.observe_leader_access(0, LineAddr::new(7), true);
}

/// Unique lines with `distill_missed = false` make only the ATD miss, so
/// PSEL rises by one per access.
fn rise_one(r: &mut Reverter, unique: &mut u64) {
    *unique += 1;
    r.observe_leader_access(0, LineAddr::new(1 << 20 | *unique), false);
}

/// On swim, PSEL must sink and LDIS must flip to disabled — and stay
/// there (hysteresis prevents oscillation storms).
#[test]
fn psel_sinks_and_disables_on_swim() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    let mut workload = spec2000::swim(21);
    let mut disabled_at = None;
    for step in 0..20u64 {
        for _ in 0..50_000 {
            let a = workload.next_access().expect("endless");
            hier.access(a);
        }
        let r = hier.l2().reverter().expect("configured");
        if !r.ldis_enabled() && disabled_at.is_none() {
            disabled_at = Some(step);
        }
    }
    let r = hier.l2().reverter().expect("configured");
    assert!(
        disabled_at.is_some(),
        "reverter never disabled LDIS on swim (psel {})",
        r.psel()
    );
    assert!(!r.ldis_enabled(), "must stay disabled on a steady stream");
    assert!(
        r.flips <= 4,
        "hysteresis should prevent thrashing, got {} flips",
        r.flips
    );
}

/// On a distillation-friendly workload, LDIS must stay enabled.
#[test]
fn ldis_stays_enabled_on_friendly_workloads() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    spec2000::health(21).drive(&mut hier, TraceLength::accesses(800_000));
    let r = hier.l2().reverter().expect("configured");
    assert!(r.ldis_enabled());
    assert!(
        r.atd_misses > r.distill_leader_misses,
        "the traditional shadow must miss more: atd {} vs distill {}",
        r.atd_misses,
        r.distill_leader_misses
    );
}

/// Leader sets always distill, even while followers are disabled, so the
/// circuit can notice when the workload turns favourable again.
#[test]
fn leader_sets_keep_distilling_while_disabled() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    hier.l2_mut().force_ldis(false);
    let leader = 0usize; // stride = 2048/32 = 64; set 0 leads
    let follower = 1usize;
    assert!(hier.l2().ldis_active_for(leader));
    assert!(!hier.l2().ldis_active_for(follower));
}

/// More leader sets react faster but cost more ATD storage; any power of
/// two that divides the set count must work.
#[test]
fn alternative_leader_counts_work() {
    for leaders in [8u32, 64, 256] {
        let cfg = DistillConfig::ldis_mt().with_reverter(ReverterConfig {
            leader_sets: leaders,
            ..ReverterConfig::default()
        });
        let mut hier = Hierarchy::hpca2007(DistillCache::new(cfg));
        spec2000::swim(5).drive(&mut hier, TraceLength::accesses(600_000));
        assert!(
            !hier.l2().reverter().expect("configured").ldis_enabled(),
            "{leaders} leaders failed to disable LDIS on swim"
        );
    }
}

/// PSEL saturates at 0 and at `psel_max` instead of wrapping: extra
/// traffic in either direction cannot push it past the rails.
#[test]
fn psel_saturates_at_both_rails() {
    let mut r = small_reverter();
    assert_eq!(r.psel(), 128, "starts at the midpoint");
    // 128 net decrements reach 0; hundreds more must not wrap around.
    for _ in 0..500 {
        sink_one(&mut r);
    }
    assert_eq!(r.psel(), 0, "saturates at the bottom rail");
    assert!(!r.ldis_enabled());
    // Likewise upward: 255 is the ceiling, not 256.
    let mut unique = 0;
    for _ in 0..500 {
        rise_one(&mut r, &mut unique);
    }
    assert_eq!(r.psel(), 255, "saturates at the top rail");
    assert!(r.ldis_enabled());
}

/// The decision flips exactly when PSEL crosses the thresholds: below 64
/// to disable, above 192 to re-enable — never on the threshold itself.
#[test]
fn decision_flips_exactly_at_the_thresholds() {
    let mut r = small_reverter();
    // The first observation is net zero (ATD compulsory miss cancels the
    // distill miss); each one after subtracts one.
    sink_one(&mut r);
    assert_eq!(r.psel(), 128);
    // 64 decrements land exactly on 64: still enabled (64 is not < 64).
    for _ in 0..64 {
        sink_one(&mut r);
    }
    assert_eq!(r.psel(), 64);
    assert!(
        r.ldis_enabled(),
        "on the disable threshold the decision holds"
    );
    assert_eq!(r.flips, 0);
    // One more crosses it.
    sink_one(&mut r);
    assert_eq!(r.psel(), 63);
    assert!(!r.ldis_enabled(), "below 64 LDIS must disable");
    assert_eq!(r.flips, 1);
    // Climbing back: 192 is inside the hysteresis band, still disabled.
    let mut unique = 0;
    for _ in 0..(192 - 63) {
        rise_one(&mut r, &mut unique);
    }
    assert_eq!(r.psel(), 192);
    assert!(
        !r.ldis_enabled(),
        "on the enable threshold the decision holds"
    );
    assert_eq!(r.flips, 1);
    // One more crosses it.
    rise_one(&mut r, &mut unique);
    assert_eq!(r.psel(), 193);
    assert!(r.ldis_enabled(), "above 192 LDIS must re-enable");
    assert_eq!(r.flips, 2);
}

/// A forced decision pins PSEL to the matching rail, and the circuit can
/// still climb out of it when the evidence reverses.
#[test]
fn forced_decision_pins_the_rail_but_stays_reversible() {
    let mut r = small_reverter();
    r.force_enabled(false);
    assert_eq!(r.psel(), 0);
    assert!(!r.ldis_enabled());
    // Sustained evidence that the traditional shadow is worse: PSEL must
    // climb from the rail and re-enable only past 192.
    let mut unique = 0;
    for _ in 0..192 {
        rise_one(&mut r, &mut unique);
    }
    assert!(!r.ldis_enabled(), "still inside the hysteresis band");
    rise_one(&mut r, &mut unique);
    assert!(r.ldis_enabled(), "193 crosses the enable threshold");
    // Forcing the other way pins the opposite rail.
    r.force_enabled(true);
    assert_eq!(r.psel(), 255);
    assert!(r.ldis_enabled());
}
