//! End-to-end dynamics of the reverter circuit (Figure 5's mechanism).

use line_distillation::cache::Hierarchy;
use line_distillation::distill::{DistillCache, DistillConfig, ReverterConfig};
use line_distillation::mem::TraceSource;
use line_distillation::workloads::{spec2000, TraceLength};

/// On swim, PSEL must sink and LDIS must flip to disabled — and stay
/// there (hysteresis prevents oscillation storms).
#[test]
fn psel_sinks_and_disables_on_swim() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    let mut workload = spec2000::swim(21);
    let mut disabled_at = None;
    for step in 0..20u64 {
        for _ in 0..50_000 {
            let a = workload.next_access().expect("endless");
            hier.access(a);
        }
        let r = hier.l2().reverter().expect("configured");
        if !r.ldis_enabled() && disabled_at.is_none() {
            disabled_at = Some(step);
        }
    }
    let r = hier.l2().reverter().unwrap();
    assert!(
        disabled_at.is_some(),
        "reverter never disabled LDIS on swim (psel {})",
        r.psel()
    );
    assert!(!r.ldis_enabled(), "must stay disabled on a steady stream");
    assert!(
        r.flips <= 4,
        "hysteresis should prevent thrashing, got {} flips",
        r.flips
    );
}

/// On a distillation-friendly workload, LDIS must stay enabled.
#[test]
fn ldis_stays_enabled_on_friendly_workloads() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    spec2000::health(21).drive(&mut hier, TraceLength::accesses(800_000));
    let r = hier.l2().reverter().expect("configured");
    assert!(r.ldis_enabled());
    assert!(
        r.atd_misses > r.distill_leader_misses,
        "the traditional shadow must miss more: atd {} vs distill {}",
        r.atd_misses,
        r.distill_leader_misses
    );
}

/// Leader sets always distill, even while followers are disabled, so the
/// circuit can notice when the workload turns favourable again.
#[test]
fn leader_sets_keep_distilling_while_disabled() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    hier.l2_mut().force_ldis(false);
    let leader = 0usize; // stride = 2048/32 = 64; set 0 leads
    let follower = 1usize;
    assert!(hier.l2().ldis_active_for(leader));
    assert!(!hier.l2().ldis_active_for(follower));
}

/// More leader sets react faster but cost more ATD storage; any power of
/// two that divides the set count must work.
#[test]
fn alternative_leader_counts_work() {
    for leaders in [8u32, 64, 256] {
        let cfg = DistillConfig::ldis_mt().with_reverter(ReverterConfig {
            leader_sets: leaders,
            ..ReverterConfig::default()
        });
        let mut hier = Hierarchy::hpca2007(DistillCache::new(cfg));
        spec2000::swim(5).drive(&mut hier, TraceLength::accesses(600_000));
        assert!(
            !hier.l2().reverter().unwrap().ldis_enabled(),
            "{leaders} leaders failed to disable LDIS on swim"
        );
    }
}
