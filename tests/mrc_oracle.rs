//! Differential-oracle tests: the single-pass Mattson profiler
//! (`crates/mrc`) against direct `ldis-cache` simulation.
//!
//! The profiler and the simulator are independently derived models of the
//! same LRU cache, so their agreement cross-validates both: a bug in
//! either the stack-distance construction or the set-associative
//! substrate breaks the equality. Every comparison here is bit-for-bit —
//! integer counters, f64 MPKI bit patterns and whole histograms — for
//! every benchmark of the paper (16 memory-intensive + 11
//! cache-insensitive) at every capacity of the MRC sweep, at the
//! canonical quick configuration. The suite runs under `LDIS_THREADS=1`
//! and `=4` in CI; the derived-seed scheme keeps both byte-identical.

use line_distillation::experiments::{
    appendix, fig8, for_each_benchmark, golden, mrc, run_baseline_with_words, run_capacity_sweep,
    run_matrix,
};

/// Oracle-vs-simulator equality over the full quick matrix: all 27
/// benchmarks × {0.5, 0.75, 1, 1.5, 2, 4} MB. One Mattson pass per
/// benchmark answers what 6 direct simulations compute.
#[test]
fn oracle_matches_direct_simulation_for_every_benchmark_and_size() {
    let cfg = golden::golden_config();
    let benches = mrc::all_benchmarks();
    let sweeps = for_each_benchmark(&benches, |b| run_capacity_sweep(b, &cfg, &mrc::MRC_SIZES));
    let direct = run_matrix(&benches, mrc::MRC_SIZES.len(), |b, i| {
        run_baseline_with_words(b, &cfg, mrc::MRC_SIZES[i])
    });
    assert_eq!(sweeps.len(), benches.len());
    for (sweep, row) in sweeps.iter().zip(&direct) {
        for (&size, (r, words)) in mrc::MRC_SIZES.iter().zip(row) {
            let ctx = format!("{} at {} kB", sweep.benchmark, size >> 10);
            let p = sweep
                .point(size)
                .unwrap_or_else(|| panic!("{ctx}: size missing from sweep"));
            assert_eq!(sweep.benchmark, r.benchmark, "{ctx}: benchmark order");
            assert_eq!(
                p.mpki.to_bits(),
                r.mpki.to_bits(),
                "{ctx}: mpki {} vs {}",
                p.mpki,
                r.mpki
            );
            assert_eq!(p.result.accesses, r.l2.accesses, "{ctx}: accesses");
            assert_eq!(p.result.hits, r.l2.loc_hits, "{ctx}: hits");
            assert_eq!(p.result.line_misses, r.l2.line_misses, "{ctx}: misses");
            assert_eq!(
                p.result.compulsory_misses, r.l2.compulsory_misses,
                "{ctx}: compulsory misses"
            );
            assert_eq!(p.result.evictions, r.l2.evictions, "{ctx}: evictions");
            assert_eq!(p.result.writebacks, r.l2.writebacks, "{ctx}: writebacks");
            assert_eq!(
                p.result.words_used_at_evict, r.l2.words_used_at_evict,
                "{ctx}: words-used-at-evict histogram"
            );
            assert_eq!(
                p.result.words_used_with_resident, *words,
                "{ctx}: words-used histogram including resident lines"
            );
            assert_eq!(sweep.hierarchy, r.hierarchy, "{ctx}: L1/trace statistics");
        }
    }
}

/// The rewired Figure 8 must render byte-identically to the pre-rewire
/// per-size simulations (the committed golden was generated from the
/// direct path).
#[test]
fn rewired_fig8_is_byte_identical_to_direct_simulations() {
    let cfg = golden::golden_config();
    assert_eq!(
        fig8::snapshot(&cfg).render_pretty(),
        fig8::snapshot_direct(&cfg).render_pretty(),
        "single-pass Figure 8 diverged from per-size simulation"
    );
}

/// The rewired Table 5 must render byte-identically to the pre-rewire
/// per-size simulations.
#[test]
fn rewired_table5_is_byte_identical_to_direct_simulations() {
    let cfg = golden::golden_config();
    assert_eq!(
        appendix::table5_snapshot(&cfg).render_pretty(),
        appendix::table5_snapshot_direct(&cfg).render_pretty(),
        "single-pass Table 5 diverged from per-size simulation"
    );
}

/// The rewired Table 6 words-used sweep must render byte-identically to
/// the pre-rewire per-size simulations.
#[test]
fn rewired_table6_is_byte_identical_to_direct_simulations() {
    let cfg = golden::golden_config();
    assert_eq!(
        appendix::table6_snapshot(&cfg).render_pretty(),
        appendix::table6_snapshot_direct(&cfg).render_pretty(),
        "single-pass Table 6 diverged from per-size simulation"
    );
}
