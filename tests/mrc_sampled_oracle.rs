//! Bounded-error differential oracle for the constant-memory SHARDS
//! sampled-MRC engine (`ldis-mrc::shards`).
//!
//! Unlike the exact Mattson oracle (`tests/mrc_oracle.rs`), which demands
//! bit-for-bit equality, the sampled engine is *approximate* by design:
//! it models a fully-associative LRU over a spatially hashed sample.
//! The contract is therefore a per-rate error budget — for every
//! benchmark × size point,
//! `|mpki_sampled − mpki_exact| ≤ mpki_tolerance(rate, ...)` — plus two
//! exact invariants that must still hold bit for bit: the hierarchy
//! statistics (the sampled adapter replays the identical L2 request
//! stream) and determinism across worker-thread counts.
//!
//! Set `LDIS_PRINT_ERR=1` to print the observed per-rate maximum error in
//! miss-ratio units; the `EPSILON_TABLE` entries in
//! `crates/mrc/src/shards.rs` were calibrated from that output with
//! ≥ 1.5× margin.

use line_distillation::experiments::mrc as emrc;
use line_distillation::experiments::{
    for_each_benchmark, parallel, run_capacity_sweep, run_sampled_capacity_sweep, RunConfig,
    SampledCapacitySweep,
};
use line_distillation::mrc::{
    check_bounded_error, epsilon_miss_ratio, mpki_tolerance, ShardsConfig,
};

const ORACLE_RATES: [f64; 3] = [0.1, 0.01, 0.001];

fn oracle_config() -> RunConfig {
    RunConfig::quick()
}

/// Every benchmark × size × rate point of the sampled engine stays within
/// the per-rate MPKI budget of the exact Mattson reconstruction, the
/// first-level statistics match bit for bit, and the sampler saw exactly
/// the L2 demand accesses the exact profiler saw.
#[test]
fn sampled_oracle_bounded_error_for_every_benchmark_size_and_rate() {
    let cfg = oracle_config();
    let benches = emrc::all_benchmarks();
    let exact = for_each_benchmark(&benches, |b| run_capacity_sweep(b, &cfg, &emrc::MRC_SIZES));
    let print_err = std::env::var("LDIS_PRINT_ERR").is_ok_and(|v| v == "1");
    for rate in ORACLE_RATES {
        let shards = ShardsConfig::at_rate(rate);
        let sampled = for_each_benchmark(&benches, |b| {
            run_sampled_capacity_sweep(b, &cfg, &emrc::MRC_SIZES, &shards)
        });
        let mut max_err_mr = 0.0f64;
        let mut max_err_at = String::new();
        for (e, s) in exact.iter().zip(&sampled) {
            assert_eq!(e.benchmark, s.benchmark);
            assert_eq!(
                e.hierarchy, s.hierarchy,
                "{}: the sampled adapter must replay the exact L2 request stream",
                e.benchmark
            );
            let accesses = e.points.first().expect("sweep has points").result.accesses;
            assert_eq!(
                s.mrc.total_refs, accesses,
                "{}: sampler ref count drifted from the exact profiler",
                e.benchmark
            );
            let instructions = e.hierarchy.instructions;
            let tolerance = mpki_tolerance(rate, accesses, instructions);
            for (&size, label) in emrc::MRC_SIZES.iter().zip(emrc::MRC_SIZE_LABELS) {
                let ctx = format!("{} at {} (rate {rate})", e.benchmark, label);
                let exact_mpki = e.mpki_at(size);
                let sampled_mpki = s.mpki_at(size);
                if let Err(msg) = check_bounded_error(sampled_mpki, exact_mpki, tolerance) {
                    panic!("{ctx}: {msg}");
                }
                if print_err && accesses > 0 {
                    let err_mr = (sampled_mpki - exact_mpki).abs() * instructions as f64
                        / (1000.0 * accesses as f64);
                    if err_mr > max_err_mr {
                        max_err_mr = err_mr;
                        max_err_at = ctx;
                    }
                }
            }
        }
        if print_err {
            eprintln!(
                "rate {rate}: max miss-ratio error {max_err_mr:.5} ({max_err_at}), \
                 budget {:.5}",
                epsilon_miss_ratio(rate)
            );
        }
    }
}

/// The sampled sweep is a pure function of (benchmark, seed): running the
/// full population on 1 and 4 worker threads yields byte-identical
/// results, down to the float bit patterns of every estimated point.
#[test]
fn sampled_sweep_is_bit_identical_across_thread_counts() {
    let cfg = oracle_config();
    let benches = emrc::all_benchmarks();
    let shards = ShardsConfig::at_rate(0.01);
    let job = |b: &line_distillation::workloads::Benchmark| {
        run_sampled_capacity_sweep(b, &cfg, &emrc::MRC_SIZES, &shards)
    };
    let serial: Vec<SampledCapacitySweep> = parallel::sweep_with_threads(1, &benches, job);
    let pooled: Vec<SampledCapacitySweep> = parallel::sweep_with_threads(4, &benches, job);
    assert_eq!(serial.len(), pooled.len());
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a, b, "{} diverged across thread counts", a.benchmark);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(
                pa.mpki.to_bits(),
                pb.mpki.to_bits(),
                "{}: mpki bits diverged at {} B",
                a.benchmark,
                pa.size_bytes
            );
            assert_eq!(pa.miss_ratio.to_bits(), pb.miss_ratio.to_bits());
        }
        assert_eq!(a.final_rate.to_bits(), b.final_rate.to_bits());
        assert_eq!(a.mean_words_used.to_bits(), b.mean_words_used.to_bits());
    }
}

/// The oracle actually has teeth: perturbing the finished sampled MRC by
/// draining more than the error budget's worth of hit mass into the
/// overflow bucket makes `check_bounded_error` fail at the same point it
/// just accepted.
#[test]
fn injected_error_beyond_the_budget_fails_the_oracle() {
    let cfg = oracle_config();
    let rate = 0.1;
    let b = line_distillation::workloads::spec2000::by_name("twolf").expect("twolf exists");
    let exact = run_capacity_sweep(&b, &cfg, &emrc::MRC_SIZES);
    let sampled =
        run_sampled_capacity_sweep(&b, &cfg, &emrc::MRC_SIZES, &ShardsConfig::at_rate(rate));
    let size = 4 << 20;
    let accesses = exact
        .points
        .first()
        .expect("sweep has points")
        .result
        .accesses;
    let instructions = exact.hierarchy.instructions;
    let tolerance = mpki_tolerance(rate, accesses, instructions);
    check_bounded_error(sampled.mpki_at(size), exact.mpki_at(size), tolerance)
        .expect("the unperturbed point passes its own oracle");

    // Move just over 2ε worth of sampled hit mass (the check allows ε on
    // either side) from within-capacity buckets into overflow: every
    // moved count flips an estimated hit into an estimated miss.
    let mut forged = sampled.mrc.clone();
    let capacity_buckets = (size / 64 / forged.bucket_lines) as usize;
    let needed = (2.0 * epsilon_miss_ratio(rate) * forged.expected_samples()) as u64 + 1;
    let mut moved = 0u64;
    for bucket in forged.buckets.iter_mut().take(capacity_buckets) {
        let take = (*bucket).min(needed - moved);
        *bucket -= take;
        forged.overflow += take;
        moved += take;
        if moved == needed {
            break;
        }
    }
    assert_eq!(
        moved, needed,
        "twolf at 4MB holds enough sampled hit mass to forge"
    );
    let forged_mpki = forged.estimated_mpki(size / 64, instructions);
    assert!(
        check_bounded_error(forged_mpki, exact.mpki_at(size), tolerance).is_err(),
        "a {needed}-sample perturbation (rate {rate}) must trip the oracle"
    );
}
