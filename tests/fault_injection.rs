//! End-to-end fault-injection campaign properties: the resilience
//! subsystem is inert at rate zero, deterministic per seed, and the
//! simulator never panics no matter how hard the metadata is hammered.

use line_distillation::cache::{Hierarchy, ProtectionScheme, RecoveryAction, SecondLevel};
use line_distillation::distill::{DistillCache, DistillConfig, ResilienceConfig};
use line_distillation::workloads::{spec2000, TraceLength};

fn resilient(rcfg: ResilienceConfig) -> DistillCache {
    DistillCache::new(DistillConfig::hpca2007_default()).with_resilience(rcfg)
}

/// With the subsystem enabled at fault rate 0, the simulation is
/// bit-identical to one with no subsystem at all: same stats, same MPKI,
/// no events, no degradation.
#[test]
fn rate_zero_is_bit_identical_to_no_subsystem() {
    let drive = |l2: DistillCache| {
        let mut hier = Hierarchy::hpca2007(l2);
        spec2000::twolf(9).drive(&mut hier, TraceLength::accesses(120_000));
        (hier.l2().stats().clone(), hier.mpki())
    };
    let (plain_stats, plain_mpki) = drive(DistillCache::new(DistillConfig::hpca2007_default()));
    let rcfg = ResilienceConfig::default()
        .with_fault_rate(0.0)
        .with_check_interval(64);
    let mut hier = Hierarchy::hpca2007(resilient(rcfg));
    spec2000::twolf(9).drive(&mut hier, TraceLength::accesses(120_000));
    assert_eq!(
        *hier.l2().stats(),
        plain_stats,
        "stats must match bit for bit"
    );
    assert_eq!(hier.mpki(), plain_mpki);
    let health = hier.l2().health().expect("subsystem is enabled");
    assert_eq!(health.faults.injected, 0);
    assert_eq!(
        health.faults.check_violations, 0,
        "a healthy cache passes every sweep"
    );
    assert!(health.events.is_empty());
    assert!(!health.degraded);
}

/// Same seed and rate → byte-identical outcome: stats, fault counters
/// and the entire degradation log.
#[test]
fn same_seed_and_rate_reproduce_exactly() {
    let run = || {
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(1e-3)
            .with_seed(0xfeed)
            .with_protection(ProtectionScheme::Parity)
            .with_check_interval(128)
            .with_degrade_after(u64::MAX);
        let mut hier = Hierarchy::hpca2007(resilient(rcfg));
        spec2000::health(4).drive(&mut hier, TraceLength::accesses(100_000));
        let h = hier.l2().health().expect("enabled").clone();
        (hier.l2().stats().clone(), h.faults, h.events, h.degraded)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "stats");
    assert_eq!(a.1, b.1, "fault counters");
    assert_eq!(a.2, b.2, "degradation log");
    assert_eq!(a.3, b.3, "degraded flag");
    assert!(a.1.injected > 0, "the campaign must actually inject faults");
}

/// Under an absurdly aggressive fault rate, every protection scheme keeps
/// the simulator alive for the whole run, and the fate counters always
/// partition the injected count.
#[test]
fn no_scheme_ever_panics_under_heavy_fire() {
    for scheme in [
        ProtectionScheme::Unprotected,
        ProtectionScheme::Parity,
        ProtectionScheme::Secded,
    ] {
        let rcfg = ResilienceConfig::default()
            .with_fault_rate(0.05)
            .with_seed(7)
            .with_protection(scheme)
            .with_check_interval(256)
            .with_degrade_after(3);
        let mut hier = Hierarchy::hpca2007(resilient(rcfg));
        spec2000::swim(11).drive(&mut hier, TraceLength::accesses(60_000));
        let s = hier.l2().stats();
        assert!(s.accesses > 0, "{scheme}: the run must complete");
        assert_eq!(
            s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
            s.accesses,
            "{scheme}: outcome accounting survives corruption"
        );
        let f = hier.l2().health().expect("enabled").faults;
        assert!(
            f.injected > 1000,
            "{scheme}: 5% per access must inject heavily"
        );
        assert_eq!(
            f.corrected + f.detected + f.silent + f.masked,
            f.injected,
            "{scheme}: every fault has exactly one fate"
        );
    }
}

/// Once parity detections push the cache over its degradation budget it
/// reverts to traditional mode — and keeps serving correctly from there.
#[test]
fn degradation_is_graceful_not_fatal() {
    let rcfg = ResilienceConfig::default()
        .with_fault_rate(0.01)
        .with_protection(ProtectionScheme::Parity)
        .with_degrade_after(2);
    let mut hier = Hierarchy::hpca2007(resilient(rcfg));
    spec2000::twolf(3).drive(&mut hier, TraceLength::accesses(80_000));
    let health = hier.l2().health().expect("enabled");
    assert!(health.degraded, "1% per access must exhaust a budget of 2");
    assert!(
        !hier.l2().ldis_active_for(0),
        "distillation is off everywhere"
    );
    let s = hier.l2().stats();
    assert_eq!(
        s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
        s.accesses,
        "the degraded cache still accounts for every access"
    );
    let degrade_access = health
        .events
        .iter()
        .find(|e| e.action == RecoveryAction::Degraded)
        .expect("degradation was logged")
        .access;
    assert!(
        s.accesses > degrade_access,
        "the cache keeps serving after degrading (stopped at {} of {})",
        degrade_access,
        s.accesses
    );
}
