//! `UPDATE_GOLDEN=1` must round-trip: regenerating a snapshot that did
//! not change writes byte-identical files, so an update run with no real
//! change leaves `git diff tests/golden` empty.
//!
//! This test mutates process environment (`UPDATE_GOLDEN`,
//! `LDIS_GOLDEN_DIR`), so it lives alone in its own integration-test
//! binary — separate test binaries run as separate processes, keeping the
//! compare tests in `golden_snapshots.rs` unaffected.

use line_distillation::experiments::golden::{self, GoldenStatus};
use line_distillation::experiments::table3;
use std::fs;

#[test]
fn update_golden_round_trips_to_identical_json() {
    let tmp = std::env::temp_dir().join(format!("ldis-golden-roundtrip-{}", std::process::id()));
    fs::create_dir_all(&tmp).unwrap();
    std::env::set_var("LDIS_GOLDEN_DIR", &tmp);

    let snap = table3::snapshot();

    // First update creates the file.
    std::env::set_var("UPDATE_GOLDEN", "1");
    assert_eq!(
        golden::verify("roundtrip", &snap),
        Ok(GoldenStatus::Updated)
    );
    let first = fs::read_to_string(tmp.join("roundtrip.json")).unwrap();

    // A second update of a freshly recomputed snapshot is a byte no-op.
    assert_eq!(
        golden::verify("roundtrip", &table3::snapshot()),
        Ok(GoldenStatus::Updated)
    );
    let second = fs::read_to_string(tmp.join("roundtrip.json")).unwrap();
    assert_eq!(
        first, second,
        "regeneration without a change must not move a byte"
    );

    // And without UPDATE_GOLDEN the fresh file verifies clean.
    std::env::remove_var("UPDATE_GOLDEN");
    assert_eq!(
        golden::verify("roundtrip", &snap),
        Ok(GoldenStatus::Matched)
    );

    std::env::remove_var("LDIS_GOLDEN_DIR");
    let _ = fs::remove_dir_all(&tmp);
}
