//! Cross-crate equivalence properties: degenerate configurations of the
//! distill cache must collapse onto simpler organizations.

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
use line_distillation::compress::{fac_cache, ValueSizeModel};
use line_distillation::distill::{DistillCache, DistillConfig, ThresholdPolicy};
use line_distillation::mem::LineGeometry;
use line_distillation::workloads::{spec2000, TraceLength, ValueProfile};

const ACCESSES: u64 = 400_000;

/// With a distillation threshold of 0, nothing is ever installed in the
/// WOC, so the distill cache must behave *exactly* like a traditional
/// cache of the LOC's size (6 ways of the same 2048 sets).
#[test]
fn zero_threshold_equals_loc_sized_traditional_cache() {
    let mut distill_hier = Hierarchy::hpca2007(DistillCache::new(
        DistillConfig::ldis_base().with_policy(ThresholdPolicy::Fixed(0)),
    ));
    spec2000::twolf(3).drive(&mut distill_hier, TraceLength::accesses(ACCESSES));

    let loc_sized = CacheConfig::with_sets(2048, 6, LineGeometry::default());
    let mut trad_hier = Hierarchy::hpca2007(BaselineL2::new(loc_sized));
    spec2000::twolf(3).drive(&mut trad_hier, TraceLength::accesses(ACCESSES));

    let d = distill_hier.l2().stats();
    let t = trad_hier.l2().stats();
    assert_eq!(d.woc_hits, 0, "threshold 0 must keep the WOC empty");
    assert_eq!(d.hole_misses, 0);
    assert_eq!(d.accesses, t.accesses);
    assert_eq!(d.demand_misses(), t.demand_misses());
    assert_eq!(d.loc_hits, t.loc_hits);
}

/// A distill cache whose reverter is forced off must track the 8-way
/// baseline closely: follower sets keep whole lines in the WOC, making
/// each set an 8-way cache with a slightly different replacement order
/// in two of the ways.
#[test]
fn forced_off_reverter_tracks_baseline() {
    let mut distill_hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    distill_hier.l2_mut().force_ldis(false);
    spec2000::swim(3).drive(&mut distill_hier, TraceLength::accesses(ACCESSES));

    let mut base_hier = Hierarchy::hpca2007(BaselineL2::new(CacheConfig::new(
        1 << 20,
        8,
        LineGeometry::default(),
    )));
    spec2000::swim(3).drive(&mut base_hier, TraceLength::accesses(ACCESSES));

    let d = distill_hier.mpki();
    let b = base_hier.mpki();
    assert!(
        (d - b).abs() / b < 0.12,
        "forced-off distill {d} should track baseline {b}"
    );
}

/// A FAC cache over perfectly incompressible values needs exactly the same
/// slot counts as the plain distill cache, so their miss rates must agree
/// closely (replacement randomness differs only by seed).
#[test]
fn incompressible_fac_matches_plain_distill() {
    let incompressible =
        ValueSizeModel::new(ValueProfile::new(0.0, 0.0, 0.0), LineGeometry::default(), 1);
    let cfg = DistillConfig::hpca2007_default();

    let mut fac_hier = Hierarchy::hpca2007(fac_cache(cfg, incompressible));
    spec2000::health(3).drive(&mut fac_hier, TraceLength::accesses(ACCESSES));

    let mut ldis_hier = Hierarchy::hpca2007(DistillCache::new(cfg));
    spec2000::health(3).drive(&mut ldis_hier, TraceLength::accesses(ACCESSES));

    let f = fac_hier.mpki();
    let l = ldis_hier.mpki();
    assert!(
        (f - l).abs() / l < 0.05,
        "incompressible FAC {f} should match plain LDIS {l}"
    );
}

/// The distill cache must never return fewer valid words than a hit
/// implies and never count an access as both hit and miss: totals add up.
#[test]
fn outcome_accounting_is_exact() {
    let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
    spec2000::art(9).drive(&mut hier, TraceLength::accesses(ACCESSES));
    let s = hier.l2().stats();
    assert_eq!(
        s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
        s.accesses
    );
    assert!(s.compulsory_misses <= s.demand_misses());
}

/// Identical seeds must give bit-identical statistics across independent
/// constructions (full determinism across the whole stack).
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut hier = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
        spec2000::mcf(123).drive(&mut hier, TraceLength::accesses(ACCESSES));
        (
            hier.l2().stats().loc_hits,
            hier.l2().stats().woc_hits,
            hier.l2().stats().hole_misses,
            hier.l2().stats().line_misses,
            hier.l2().stats().writebacks,
            hier.stats().instructions,
        )
    };
    assert_eq!(run(), run());
}
