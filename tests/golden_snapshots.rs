//! Golden-snapshot regression tests.
//!
//! Each test recomputes one experiment at the canonical quick
//! configuration and compares the canonical JSON rendering byte for byte
//! against the committed file under `tests/golden/`. A mismatch means a
//! simulator, workload or sweep change moved a published number: if that
//! was intentional, regenerate with `UPDATE_GOLDEN=1 cargo test` and
//! commit the diff alongside the change.

use line_distillation::experiments::{
    advisor, appendix, exec, fig8, golden, linesize, motivation, mrc, parallel, resilience, sweep,
    table3,
};

#[test]
fn motivation_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("motivation", &motivation::snapshot(&cfg));
}

#[test]
fn table3_matches_golden() {
    golden::assert_matches("table3", &table3::snapshot());
}

#[test]
fn linesize_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("linesize", &linesize::snapshot(&cfg));
}

#[test]
fn resilience_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("resilience", &resilience::snapshot(&cfg));
}

#[test]
fn fig8_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("fig8", &fig8::snapshot(&cfg));
}

#[test]
fn table5_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("table5", &appendix::table5_snapshot(&cfg));
}

#[test]
fn table6_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("table6", &appendix::table6_snapshot(&cfg));
}

#[test]
fn mrc_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("mrc", &mrc::snapshot(&cfg));
}

#[test]
fn advisor_matches_golden() {
    let cfg = golden::golden_config();
    golden::assert_matches("advisor", &advisor::snapshot(&cfg));
}

#[test]
fn sweep_matches_golden() {
    // The full 81-cell matrix through the crash-safe executor: the
    // snapshot must be byte-stable whether cells run serially, on a
    // pool, or resumed from a journal (crash_resume.rs covers the
    // journal paths against this same committed file).
    let cfg = golden::golden_config();
    let policy = exec::ExecPolicy::with_threads(parallel::configured_threads());
    let report = exec::run_cells(
        sweep::cells(),
        move |_cell, spec: &sweep::CellSpec| sweep::run_cell(spec, &cfg),
        &policy,
        std::collections::BTreeMap::new(),
        |_, _| {},
    );
    assert!(report.all_ok(), "clean matrix must not quarantine");
    golden::assert_matches("sweep", &sweep::snapshot(&report.outcomes));
}
