//! Property-based invariants across the whole stack, driven by random
//! access sequences.

use line_distillation::cache::{
    BaselineL2, CacheConfig, Hierarchy, L2Outcome, L2Request, SecondLevel,
};
use line_distillation::distill::{DistillCache, DistillConfig, ThresholdPolicy};
use line_distillation::mem::{Access, Addr, LineAddr, LineGeometry, WordIndex};
use proptest::prelude::*;

/// A small universe keeps sets hot so evictions and WOC traffic happen.
fn arb_access() -> impl Strategy<Value = Access> {
    (0u64..4096, 0u8..8, prop::bool::ANY).prop_map(|(line, word, write)| {
        let addr = Addr::new(line * 64 + word as u64 * 8);
        if write {
            Access::store(addr, 8)
        } else {
            Access::load(addr, 8)
        }
    })
}

/// A tiny distill cache so invariants are stressed quickly.
fn tiny_distill(policy: ThresholdPolicy) -> DistillCache {
    DistillCache::new(
        DistillConfig::new(16 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(policy)
            .with_seed(3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Outcome accounting holds for any access sequence, and the WOC's
    /// structural invariants hold at every step.
    #[test]
    fn distill_cache_invariants_hold(accesses in prop::collection::vec(arb_access(), 1..400)) {
        let mut dc = tiny_distill(ThresholdPolicy::All);
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            let resp = dc.access(L2Request::data(line, word, a.kind.is_write()));
            // The demanded word is always among the returned valid words.
            prop_assert!(resp.valid_words.is_used(word));
            // A WOC hit never returns a full line unless 8 words were stored.
            if resp.outcome == L2Outcome::WocHit {
                prop_assert!(resp.valid_words.used_words() >= 1);
            }
        }
        for set in 0..16 {
            dc.woc().check_invariants(set).map_err(|e| {
                proptest::test_runner::TestCaseError::fail(format!("set {set}: {e}"))
            })?;
        }
        let s = dc.stats();
        prop_assert_eq!(
            s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
            s.accesses
        );
    }

    /// A line is never resident in the LOC and the WOC simultaneously.
    #[test]
    fn loc_and_woc_are_disjoint(accesses in prop::collection::vec(arb_access(), 1..300)) {
        let mut dc = tiny_distill(ThresholdPolicy::median());
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            dc.access(L2Request::data(line, word, a.kind.is_write()));
            // Spot-check the just-accessed line.
            let set = dc.loc().config().set_index(line);
            let tag = dc.loc().config().tag(line);
            let in_loc = dc.loc().contains(line);
            let in_woc = dc.woc().lookup(set, tag).is_some();
            prop_assert!(!(in_loc && in_woc), "line {line} in both structures");
        }
    }

    /// Running the same accesses through a hierarchy twice gives identical
    /// statistics (no hidden global state).
    #[test]
    fn hierarchy_is_deterministic(accesses in prop::collection::vec(arb_access(), 1..300)) {
        let run = |accesses: &[Access]| {
            let mut h = Hierarchy::hpca2007(DistillCache::new(
                DistillConfig::hpca2007_default(),
            ));
            for &a in accesses {
                h.access(a);
            }
            (h.l2().stats().hits(), h.l2().stats().demand_misses())
        };
        prop_assert_eq!(run(&accesses), run(&accesses));
    }

    /// The baseline never reports WOC outcomes, and its hit/miss accounting
    /// is exact for any sequence.
    #[test]
    fn baseline_outcomes_are_binary(accesses in prop::collection::vec(arb_access(), 1..300)) {
        let mut l2 = BaselineL2::new(CacheConfig::with_sets(16, 4, LineGeometry::default()));
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            let resp = l2.access(L2Request::data(line, word, a.kind.is_write()));
            prop_assert!(matches!(
                resp.outcome,
                L2Outcome::LocHit | L2Outcome::LineMiss
            ));
        }
        let s = l2.stats();
        prop_assert_eq!(s.woc_hits, 0);
        prop_assert_eq!(s.hole_misses, 0);
        prop_assert_eq!(s.loc_hits + s.line_misses, s.accesses);
    }

    /// Immediately re-requesting the same word always hits (MRU residency),
    /// for both organizations.
    #[test]
    fn immediate_rereference_hits(line in 0u64..10_000, word in 0u8..8) {
        let req = L2Request::data(LineAddr::new(line), WordIndex::new(word), false);
        let mut dc = DistillCache::new(DistillConfig::hpca2007_default());
        dc.access(req);
        prop_assert!(dc.access(req).outcome.is_hit());
        let mut base = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        base.access(req);
        prop_assert!(base.access(req).outcome.is_hit());
    }
}
