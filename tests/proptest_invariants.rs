//! Property-based invariants across the whole stack, driven by random
//! access sequences from a deterministic seeded generator (`SimRng`) so
//! every run explores the same cases and failures reproduce exactly.

use line_distillation::cache::{
    BaselineL2, CacheConfig, Hierarchy, L2Outcome, L2Request, SecondLevel,
};
use line_distillation::distill::{DistillCache, DistillConfig, ThresholdPolicy};
use line_distillation::mem::{Access, Addr, LineAddr, LineGeometry, SimRng, WordIndex};

/// A small universe keeps sets hot so evictions and WOC traffic happen.
fn random_access(rng: &mut SimRng) -> Access {
    let line = rng.range(4096);
    let word = rng.range(8);
    let addr = Addr::new(line * 64 + word * 8);
    if rng.chance(0.5) {
        Access::store(addr, 8)
    } else {
        Access::load(addr, 8)
    }
}

fn random_sequence(rng: &mut SimRng, max: usize) -> Vec<Access> {
    let len = 1 + rng.index(max - 1);
    (0..len).map(|_| random_access(rng)).collect()
}

/// A tiny distill cache so invariants are stressed quickly.
fn tiny_distill(policy: ThresholdPolicy) -> DistillCache {
    DistillCache::new(
        DistillConfig::new(16 * 4 * 64, 4, 1, LineGeometry::default())
            .with_policy(policy)
            .with_seed(3),
    )
}

/// Outcome accounting holds for any access sequence, and the WOC's
/// structural invariants hold at every step.
#[test]
fn distill_cache_invariants_hold() {
    let mut rng = SimRng::new(0xe2e1);
    for case in 0..40 {
        let accesses = random_sequence(&mut rng, 400);
        let mut dc = tiny_distill(ThresholdPolicy::All);
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            let resp = dc.access(L2Request::data(line, word, a.kind.is_write()));
            // The demanded word is always among the returned valid words.
            assert!(resp.valid_words.is_used(word), "case {case}");
            // A WOC hit never returns a full line unless 8 words were stored.
            if resp.outcome == L2Outcome::WocHit {
                assert!(resp.valid_words.used_words() >= 1, "case {case}");
            }
        }
        for set in 0..16 {
            dc.woc()
                .check_invariants(set)
                .unwrap_or_else(|e| panic!("case {case}: set {set}: {e}"));
        }
        let s = dc.stats();
        assert_eq!(
            s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
            s.accesses,
            "case {case}"
        );
    }
}

/// A line is never resident in the LOC and the WOC simultaneously.
#[test]
fn loc_and_woc_are_disjoint() {
    let mut rng = SimRng::new(0xe2e2);
    for case in 0..40 {
        let accesses = random_sequence(&mut rng, 300);
        let mut dc = tiny_distill(ThresholdPolicy::median());
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            dc.access(L2Request::data(line, word, a.kind.is_write()));
            // Spot-check the just-accessed line.
            let set = dc.loc().config().set_index(line);
            let tag = dc.loc().config().tag(line);
            let in_loc = dc.loc().contains(line);
            let in_woc = dc.woc().lookup(set, tag).is_some();
            assert!(
                !(in_loc && in_woc),
                "case {case}: line {line} in both structures"
            );
        }
    }
}

/// Running the same accesses through a hierarchy twice gives identical
/// statistics (no hidden global state).
#[test]
fn hierarchy_is_deterministic() {
    let run = |accesses: &[Access]| {
        let mut h = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
        for &a in accesses {
            h.access(a);
        }
        (h.l2().stats().hits(), h.l2().stats().demand_misses())
    };
    let mut rng = SimRng::new(0xe2e3);
    for case in 0..20 {
        let accesses = random_sequence(&mut rng, 300);
        assert_eq!(run(&accesses), run(&accesses), "case {case}");
    }
}

/// The baseline never reports WOC outcomes, and its hit/miss accounting
/// is exact for any sequence.
#[test]
fn baseline_outcomes_are_binary() {
    let mut rng = SimRng::new(0xe2e4);
    for case in 0..40 {
        let accesses = random_sequence(&mut rng, 300);
        let mut l2 = BaselineL2::new(CacheConfig::with_sets(16, 4, LineGeometry::default()));
        let geom = LineGeometry::default();
        for a in &accesses {
            let line = geom.line_addr(a.addr);
            let word = geom.word_index(a.addr);
            let resp = l2.access(L2Request::data(line, word, a.kind.is_write()));
            assert!(
                matches!(resp.outcome, L2Outcome::LocHit | L2Outcome::LineMiss),
                "case {case}"
            );
        }
        let s = l2.stats();
        assert_eq!(s.woc_hits, 0, "case {case}");
        assert_eq!(s.hole_misses, 0, "case {case}");
        assert_eq!(s.loc_hits + s.line_misses, s.accesses, "case {case}");
    }
}

/// Immediately re-requesting the same word always hits (MRU residency),
/// for both organizations.
#[test]
fn immediate_rereference_hits() {
    let mut rng = SimRng::new(0xe2e5);
    for case in 0..50 {
        let line = rng.range(10_000);
        let word = rng.range(8) as u8;
        let req = L2Request::data(LineAddr::new(line), WordIndex::new(word), false);
        let mut dc = DistillCache::new(DistillConfig::hpca2007_default());
        dc.access(req);
        assert!(dc.access(req).outcome.is_hit(), "case {case}");
        let mut base = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
        base.access(req);
        assert!(base.access(req).outcome.is_hit(), "case {case}");
    }
}
