//! Serial-vs-parallel equivalence: the sweep engine must produce
//! bit-identical result matrices for every worker count, because each
//! (benchmark, configuration) cell derives its randomness independently
//! and results merge in canonical matrix order.

use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::experiments::{
    run, run_baseline, run_matrix_with_threads, RunConfig, RunResult,
};
use line_distillation::workloads::memory_intensive;

/// A small but non-trivial quick sweep: 6 benchmarks × 3 configurations,
/// mixing cheap and expensive benchmarks so parallel completion order
/// genuinely differs from canonical order.
fn quick_sweep(threads: usize) -> Vec<Vec<RunResult>> {
    let benches: Vec<_> = memory_intensive()
        .into_iter()
        .filter(|b| matches!(b.name, "art" | "mcf" | "twolf" | "apsi" | "swim" | "health"))
        .collect();
    let cfg = RunConfig::quick().with_accesses(60_000);
    run_matrix_with_threads(threads, &benches, 3, |b, config| match config {
        0 => run_baseline(b, &cfg, 1 << 20),
        1 => run(b, &cfg, || DistillCache::new(DistillConfig::ldis_base())),
        _ => run(b, &cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        }),
    })
}

#[test]
fn serial_and_parallel_matrices_are_bit_identical() {
    let serial = quick_sweep(1);
    let parallel = quick_sweep(4);
    assert_eq!(serial.len(), 6);
    assert!(serial.iter().all(|row| row.len() == 3));
    // RunResult::eq compares every counter, histogram bin and float bit
    // for bit — any scheduling leak into the simulation fails here.
    assert_eq!(serial, parallel);
}

#[test]
fn oversubscribed_pool_changes_nothing() {
    // More workers than cells: every cell still lands in its slot.
    assert_eq!(quick_sweep(64), quick_sweep(2));
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    assert_eq!(quick_sweep(4), quick_sweep(4));
}

#[test]
fn cells_use_independent_derived_seeds() {
    // Two cells of the same benchmark under different configurations must
    // not share a trace (the configuration label splits the seed), while
    // rerunning the same cell reproduces it exactly.
    let b = memory_intensive()
        .into_iter()
        .find(|b| b.name == "twolf")
        .unwrap();
    let cfg = RunConfig::quick().with_accesses(60_000);
    let base = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_base()));
    let mt = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_mt()));
    let again = run(&b, &cfg, || DistillCache::new(DistillConfig::ldis_base()));
    assert_eq!(base, again, "same cell must reproduce bit for bit");
    assert_ne!(
        base.hierarchy.instructions, mt.hierarchy.instructions,
        "different configuration labels must derive different workload streams"
    );
}
