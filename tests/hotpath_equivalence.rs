//! Differential equivalence suite for the hot-path overhaul.
//!
//! The arena-backed struct-of-arrays cache storage and the `u64` bitwise
//! footprint operations replaced per-set `Vec<Vec<Entry>>` pointer chasing
//! and per-word loops. This suite keeps the pre-overhaul per-word routines
//! alive as reference implementations and proves the fast paths bit-for-bit
//! equal to them:
//!
//! * the flat [`SetAssocCache`] against a per-set model built from the
//!   legacy [`CacheSet`]/[`TagEntry`] structures, over hundreds of
//!   SimRng-derived random traces — same hits, same footprints, same
//!   words-used histograms, same eviction order;
//! * [`Footprint::touch_span`] and the sectored-L1 span masks against the
//!   historical `for w in first..=last` loop;
//! * the WOC run-finder bit tricks against a naive aligned-window scan,
//!   exhaustively over all 2^8 low-byte valid/head patterns;
//! * a seeded mutation check: an off-by-one span mask (behind the
//!   test-only `span_mask16_with_mutation` flag) must trip the suite.

use ldis_cache::{CacheConfig, CacheSet, EvictedLine, SetAssocCache};
use ldis_mem::bitops::{
    aligned_stride, eligible_aligned_slots, free_aligned_windows, low_mask, span_mask16,
    span_mask16_with_mutation,
};
use ldis_mem::rng::{stable_id, SimRng};
use ldis_mem::stats::Histogram;
use ldis_mem::{Footprint, LineAddr, LineGeometry, WordIndex};

/// The pre-overhaul reference: a set-associative cache whose sets are the
/// legacy per-set [`CacheSet`] stacks and whose footprint updates go word
/// by word through [`TagEntry`]'s scalar methods. This is exactly the
/// structure `SetAssocCache` used before the arena rewrite.
struct RefCache {
    cfg: CacheConfig,
    sets: Vec<CacheSet>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.num_sets())
            .map(|_| CacheSet::new(cfg.ways()))
            .collect();
        RefCache { cfg, sets }
    }

    fn set_mut(&mut self, line: LineAddr) -> (&mut CacheSet, u64) {
        let idx = self.cfg.set_index(line);
        let tag = self.cfg.tag(line);
        (&mut self.sets[idx], tag)
    }

    fn access(&mut self, line: LineAddr, word: Option<WordIndex>, write: bool) -> bool {
        let (set, tag) = self.set_mut(line);
        match set.find(tag) {
            Some(way) => {
                let pos = set.promote(way);
                let e = set.entry_mut(way);
                e.observe_position(pos);
                if let Some(w) = word {
                    e.touch_word(w);
                }
                if write {
                    e.dirty = true;
                }
                true
            }
            None => false,
        }
    }

    fn install(
        &mut self,
        line: LineAddr,
        word: Option<WordIndex>,
        write: bool,
        is_instr: bool,
    ) -> Option<EvictedLine> {
        let set_idx = self.cfg.set_index(line);
        let (set, tag) = self.set_mut(line);
        let way = set.victim_way();
        let victim = {
            let e = set.entry(way);
            if e.valid {
                Some((e.tag, e.dirty, e.is_instr, e.footprint, e.max_pos_at_change))
            } else {
                None
            }
        };
        let e = set.entry_mut(way);
        e.install(tag, write, is_instr);
        if let Some(w) = word {
            e.touch_word(w);
        }
        set.promote(way);
        victim.map(|(vtag, dirty, vinstr, footprint, recency)| EvictedLine {
            line: self.cfg.line_of(set_idx, vtag),
            dirty,
            is_instr: vinstr,
            footprint,
            recency_at_last_change: recency,
        })
    }

    fn merge_footprint(&mut self, line: LineAddr, fp: Footprint, dirty: bool) -> bool {
        let (set, tag) = self.set_mut(line);
        match set.find(tag) {
            Some(way) => {
                let e = set.entry_mut(way);
                e.merge_footprint(fp);
                if dirty {
                    e.dirty = true;
                }
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, line: LineAddr) -> bool {
        let (set, tag) = self.set_mut(line);
        match set.find(tag) {
            Some(way) => {
                set.entry_mut(way).valid = false;
                true
            }
            None => false,
        }
    }
}

/// Drives the arena-backed cache and the legacy reference through one
/// random trace, asserting every observable agrees step by step. Returns
/// the words-used-at-evict histograms of both paths.
fn run_trace(seed: u64) -> (Histogram, Histogram) {
    let mut rng = SimRng::new(seed);
    let sets = 1u64 << rng.range(3); // 1, 2 or 4 sets
    let ways = 1 + rng.range(8) as u32; // 1..=8 ways
    let cfg = CacheConfig::with_sets(sets, ways, LineGeometry::default());
    let mut fast = SetAssocCache::new(cfg);
    let mut slow = RefCache::new(cfg);
    let mut fast_hist = Histogram::new(9);
    let mut slow_hist = Histogram::new(9);
    let lines = sets * (ways as u64 + 2); // enough aliases to force evictions
    for step in 0..300 {
        let line = LineAddr::new(rng.range(lines));
        let word = match rng.range(4) {
            0 => None,
            _ => Some(WordIndex::new(rng.range(8) as u8)),
        };
        let write = rng.chance(0.3);
        match rng.range(10) {
            0 => {
                // Footprint merge from a simulated L1 eviction.
                let fp = Footprint::from_bits((rng.next_u64() & 0xff) as u16);
                assert_eq!(
                    fast.merge_footprint(line, fp, write),
                    slow.merge_footprint(line, fp, write),
                    "merge disagrees at step {step} (seed {seed:#x})"
                );
            }
            1 => {
                let fast_ev = fast.invalidate(line);
                assert_eq!(
                    fast_ev.is_some(),
                    slow.invalidate(line),
                    "invalidate disagrees at step {step} (seed {seed:#x})"
                );
            }
            _ => {
                let hit = fast.access(line, word, write);
                assert_eq!(
                    hit,
                    slow.access(line, word, write),
                    "hit/miss disagrees at step {step} (seed {seed:#x})"
                );
                if !hit {
                    let is_instr = rng.chance(0.2);
                    let fast_ev = fast.install(line, word, write, is_instr);
                    let slow_ev = slow.install(line, word, write, is_instr);
                    assert_eq!(
                        fast_ev, slow_ev,
                        "eviction disagrees at step {step} (seed {seed:#x})"
                    );
                    for (ev, hist) in [(fast_ev, &mut fast_hist), (slow_ev, &mut slow_hist)] {
                        if let Some(ev) = ev {
                            if !ev.is_instr {
                                hist.record(ev.footprint.used_words() as usize);
                            }
                        }
                    }
                }
            }
        }
    }
    // Final state: every resident line, its entry and its recency position
    // must agree between the arena and the per-set reference.
    let mut fast_state: Vec<_> = fast
        .iter_lines()
        .map(|(l, e)| (l.raw(), e, fast.position_of(l)))
        .collect();
    fast_state.sort_by_key(|(raw, _, _)| *raw);
    let mut slow_state = Vec::new();
    for set_idx in 0..sets as usize {
        let set = &slow.sets[set_idx];
        for way in 0..ways as usize {
            let e = *set.entry(way);
            if e.valid {
                let line = cfg.line_of(set_idx, e.tag);
                slow_state.push((line.raw(), e, Some(set.position_of(way))));
            }
        }
    }
    slow_state.sort_by_key(|(raw, _, _)| *raw);
    assert_eq!(
        fast_state, slow_state,
        "final state disagrees (seed {seed:#x})"
    );
    (fast_hist, slow_hist)
}

#[test]
fn arena_cache_matches_legacy_per_set_model_on_random_traces() {
    // 240 independent SimRng-derived traces across set counts, way counts
    // and op mixes; every observable is asserted inside `run_trace`, and
    // the accumulated words-used histograms must match bin for bin.
    let mut master = SimRng::new(stable_id("hotpath-equivalence"));
    let mut fast_total = Histogram::new(9);
    let mut slow_total = Histogram::new(9);
    for _ in 0..240 {
        let (f, s) = run_trace(master.next_u64());
        fast_total.merge(&f);
        slow_total.merge(&s);
    }
    for bin in 0..9 {
        assert_eq!(fast_total.count(bin), slow_total.count(bin), "bin {bin}");
    }
    assert!(fast_total.total() > 0, "traces must produce evictions");
}

/// The per-word span reference — the loop `touch_span` replaced.
fn touch_span_ref(fp: &mut Footprint, first: u8, last: u8) -> bool {
    let mut changed = false;
    for w in first..=last {
        changed |= fp.touch(WordIndex::new(w));
    }
    changed
}

/// Drives random span accesses through a mask-based footprint (built with
/// `span_fn`) and the per-word reference; returns whether every step
/// agreed. The real mask must always agree; the mutated mask must not.
fn span_differential_agrees(span_fn: fn(u8, u8) -> u16) -> bool {
    let mut rng = SimRng::new(stable_id("span-differential"));
    for _ in 0..2_000 {
        let first = rng.range(8) as u8;
        let last = first + rng.range(8 - first as u64) as u8;
        let pre = (rng.next_u64() & 0xff) as u16;
        let mut fast = Footprint::from_bits(pre);
        let mask = span_fn(first, last);
        let fast_changed = mask & !fast.bits() != 0;
        fast.merge(Footprint::from_bits(mask));
        let mut slow = Footprint::from_bits(pre);
        let slow_changed = touch_span_ref(&mut slow, first, last);
        if fast != slow || fast_changed != slow_changed {
            return false;
        }
    }
    true
}

#[test]
fn touch_span_matches_per_word_loop() {
    assert!(span_differential_agrees(span_mask16));
    // The public API path must agree too, exhaustively.
    for first in 0u8..8 {
        for last in first..8 {
            for pre in 0u16..256 {
                let mut fast = Footprint::from_bits(pre);
                let fast_changed = fast.touch_span(WordIndex::new(first), WordIndex::new(last));
                let mut slow = Footprint::from_bits(pre);
                let slow_changed = touch_span_ref(&mut slow, first, last);
                assert_eq!(fast, slow, "first={first} last={last} pre={pre:#b}");
                assert_eq!(fast_changed, slow_changed);
            }
        }
    }
}

#[test]
fn seeded_mutation_trips_the_suite() {
    // The deliberately off-by-one mask (test-only flag) must be caught by
    // the same differential that passes for the real implementation —
    // evidence the suite has teeth.
    assert!(span_differential_agrees(|f, l| span_mask16_with_mutation(
        f, l, false
    )));
    assert!(
        !span_differential_agrees(|f, l| span_mask16_with_mutation(f, l, true)),
        "the off-by-one span mask must be detected"
    );
}

#[test]
fn span_mask_popcount_is_span_length() {
    for first in 0u8..16 {
        for last in first..16 {
            assert_eq!(
                span_mask16(first, last).count_ones() as u8,
                last - first + 1,
                "first={first} last={last}"
            );
        }
    }
}

#[test]
fn footprint_merge_is_bitwise_or() {
    let mut rng = SimRng::new(stable_id("merge-is-or"));
    for _ in 0..1_000 {
        let a = (rng.next_u64() & 0xffff) as u16;
        let b = (rng.next_u64() & 0xffff) as u16;
        let mut fp = Footprint::from_bits(a);
        fp.merge(Footprint::from_bits(b));
        assert_eq!(fp.bits(), a | b);
        assert_eq!(
            Footprint::from_bits(a)
                .merged(Footprint::from_bits(b))
                .bits(),
            a | b
        );
    }
}

/// Naive run-finder: scan every aligned offset and test each slot — the
/// shape of the pre-overhaul WOC placement loop.
fn free_windows_ref(valid: u64, words: u32, slots: u32) -> u64 {
    let mut out = 0u64;
    let mut offset = 0;
    while offset + slots <= words {
        if (offset..offset + slots).all(|s| valid & (1 << s) == 0) {
            out |= 1 << offset;
        }
        offset += slots;
    }
    out
}

#[test]
fn run_finder_matches_naive_scan_for_all_byte_patterns() {
    // Exhaustive over all 2^8 valid patterns and all 2^8 head patterns of
    // an 8-word WOC way, for every power-of-two run size the paper allows.
    for valid in 0u64..256 {
        for slots in [1u32, 2, 4, 8] {
            assert_eq!(
                free_aligned_windows(valid, 8, slots),
                free_windows_ref(valid, 8, slots),
                "valid={valid:#010b} slots={slots}"
            );
        }
        for head in 0u64..256 {
            for slots in [1u32, 2, 4, 8] {
                let got = eligible_aligned_slots(valid, head, 8, slots);
                let mut expect = 0u64;
                let mut offset = 0;
                while offset < 8 {
                    if valid & (1 << offset) == 0 || head & (1 << offset) != 0 {
                        expect |= 1 << offset;
                    }
                    offset += slots;
                }
                assert_eq!(got, expect, "valid={valid:#b} head={head:#b} slots={slots}");
            }
        }
    }
}

#[test]
fn stride_and_low_mask_building_blocks() {
    assert_eq!(aligned_stride(1), u64::MAX);
    assert_eq!(aligned_stride(2) & low_mask(8), 0b0101_0101);
    assert_eq!(aligned_stride(4) & low_mask(8), 0b0001_0001);
    assert_eq!(aligned_stride(8) & low_mask(8), 0b0000_0001);
    assert_eq!(low_mask(8), 0xff);
}
