//! Seeded fault campaign for the crash-safe sweep.
//!
//! Every test drives the full 81-cell matrix (at a reduced access count,
//! so the campaign stays fast) through `sweep::execute` and asserts the
//! recovered run is **byte-identical** to an uninterrupted one on the
//! canonical snapshot rendering — the same bytes `--out` writes and the
//! golden harness compares. Covered failure classes:
//!
//! * a cell that panics on every attempt (quarantined, journal keeps the
//!   other 80, resume re-executes exactly the missing cell);
//! * a transient panic that recovers via retry + confirmation replay;
//! * a journal whose tail was cut mid-record (a SIGKILL mid-append);
//! * a journal with a flipped checksum byte (bit rot);
//! * a hung cell resolved by the watchdog;
//! * graceful-degradation golden comparison over surviving cells.

use line_distillation::experiments::{exec::FaultPlan, golden, sweep, RunConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The miniature campaign configuration: all 81 cells, short runs.
fn small() -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.accesses = 20_000;
    cfg.warmup = 0;
    cfg
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ldis_crash_{}_{name}", std::process::id()))
}

fn opts(threads: usize) -> sweep::SweepOptions {
    sweep::SweepOptions::new(small(), threads)
}

fn run(o: &sweep::SweepOptions) -> sweep::SweepOutcome {
    sweep::execute(o).expect("sweep must not fail at the CLI level")
}

/// The uninterrupted reference bytes, computed once per test binary.
fn clean_bytes() -> &'static str {
    static CLEAN: OnceLock<String> = OnceLock::new();
    CLEAN.get_or_init(|| run(&opts(1)).snapshot.render_pretty())
}

#[test]
fn clean_sweep_is_thread_count_invariant() {
    let parallel = run(&opts(4));
    assert_eq!(parallel.quarantined, 0);
    assert_eq!(parallel.snapshot.render_pretty(), clean_bytes());
}

#[test]
fn permanent_panic_quarantines_then_resume_restores_identical_bytes() {
    for threads in [1usize, 4] {
        let journal = tmp(&format!("perm_t{threads}.jsonl"));
        let _ = fs::remove_file(&journal);

        // The crash: cell 5 panics on every attempt. The run completes,
        // quarantines it, and journals the other 80 cells.
        let mut crashed = opts(threads);
        crashed.journal = Some(journal.clone());
        crashed.faults = FaultPlan::parse("5:panic:99").expect("valid fault spec");
        crashed.max_retries = 1;
        let outcome = run(&crashed);
        assert_eq!(outcome.quarantined, 1, "threads={threads}");
        assert!(outcome.text.contains("[panicked]"), "threads={threads}");
        assert_ne!(outcome.snapshot.render_pretty(), clean_bytes());

        // The recovery: resume without the fault. Only the missing cell
        // runs, and the final snapshot is bit-identical to a run that
        // never crashed.
        let mut resumed = opts(threads);
        resumed.journal = Some(journal.clone());
        resumed.resume = true;
        let outcome = run(&resumed);
        assert_eq!(outcome.quarantined, 0, "threads={threads}");
        assert!(
            outcome.text.contains("80 resumed, 1 executed"),
            "threads={threads}: {}",
            outcome.text
        );
        assert_eq!(outcome.snapshot.render_pretty(), clean_bytes());
        let _ = fs::remove_file(&journal);
    }
}

#[test]
fn transient_panic_recovers_via_retry_without_changing_the_bytes() {
    // Cell 7 panics on its first attempt only; the retry succeeds and a
    // confirmation replay proves the recovered result is deterministic.
    let mut o = opts(4);
    o.faults = FaultPlan::parse("7:panic:1").expect("valid fault spec");
    let outcome = run(&o);
    assert_eq!(outcome.quarantined, 0);
    assert!(outcome.text.contains("1 retried"), "{}", outcome.text);
    assert_eq!(outcome.snapshot.render_pretty(), clean_bytes());
}

#[test]
fn journal_truncated_mid_record_is_discarded_and_reexecuted() {
    // A SIGKILL mid-append leaves a half-written trailing record. Resume
    // must keep the valid prefix, drop the torn tail, and re-run the
    // rest to the exact uninterrupted bytes.
    let journal = tmp("trunc.jsonl");
    let _ = fs::remove_file(&journal);
    let mut o = opts(4);
    o.journal = Some(journal.clone());
    run(&o);

    let text = fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    assert_eq!(lines.len(), 82, "header + 81 records");
    let keep: usize = lines[..11].iter().map(|l| l.len()).sum();
    let cut = keep + lines[11].len() / 2;
    fs::write(&journal, &text.as_bytes()[..cut]).expect("truncate journal");

    let mut resumed = opts(1);
    resumed.journal = Some(journal.clone());
    resumed.resume = true;
    let outcome = run(&resumed);
    assert!(
        outcome.text.contains("10 resumed, 71 executed"),
        "{}",
        outcome.text
    );
    assert!(outcome.text.contains("discarded"), "{}", outcome.text);
    assert_eq!(outcome.snapshot.render_pretty(), clean_bytes());

    // The resumed run repaired the journal: full, newline-terminated.
    let repaired = fs::read_to_string(&journal).expect("journal rewritten");
    assert_eq!(repaired.split_inclusive('\n').count(), 82);
    assert!(repaired.ends_with('\n'));
    let _ = fs::remove_file(&journal);
}

#[test]
fn journal_with_flipped_checksum_byte_is_discarded_and_reexecuted() {
    let journal = tmp("flip.jsonl");
    let _ = fs::remove_file(&journal);
    let mut o = opts(1);
    o.journal = Some(journal.clone());
    run(&o);

    // Flip one digit inside record 6's checksum (line 0 is the header).
    let text = fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    let line_start: usize = lines[..6].iter().map(|l| l.len()).sum();
    let field = lines[6]
        .rfind("\"checksum\":")
        .expect("record carries a checksum");
    let digit = line_start + field + "\"checksum\":".len() + 1;
    let mut bytes = text.into_bytes();
    assert!(bytes[digit].is_ascii_digit());
    bytes[digit] = if bytes[digit] == b'9' { b'1' } else { b'9' };
    fs::write(&journal, &bytes).expect("corrupt journal");

    // Resume keeps the 5 records before the corruption, reports the
    // discard, re-executes the remaining 76 cells, and converges on the
    // uninterrupted bytes.
    let mut resumed = opts(4);
    resumed.journal = Some(journal.clone());
    resumed.resume = true;
    let outcome = run(&resumed);
    assert!(
        outcome.text.contains("5 resumed, 76 executed"),
        "{}",
        outcome.text
    );
    assert!(outcome.text.contains("discarded"), "{}", outcome.text);
    assert_eq!(outcome.snapshot.render_pretty(), clean_bytes());
    let _ = fs::remove_file(&journal);
}

#[test]
fn hung_cell_is_quarantined_and_the_sweep_still_completes() {
    let mut o = opts(2);
    o.faults = FaultPlan::parse("3:hang").expect("valid fault spec");
    // Generous budget: a real debug-build cell finishes in well under a
    // second even on a loaded test machine; the injected hang never does.
    o.cell_timeout_ms = Some(2_000);
    let outcome = run(&o);
    assert_eq!(outcome.quarantined, 1);
    assert!(outcome.text.contains("[hung]"), "{}", outcome.text);
    assert!(outcome.text.contains("repro:"), "{}", outcome.text);
}

#[test]
fn golden_check_degrades_to_surviving_cells() {
    // Quarantine + UPDATE_GOLDEN is a refused combination by design;
    // skip this test during regeneration runs.
    if golden::update_requested() {
        return;
    }
    // This test owns LDIS_GOLDEN_DIR for the whole binary: no other test
    // here reads the golden directory.
    let dir = tmp("golden_dir");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("golden dir");
    fs::write(dir.join("sweep.json"), clean_bytes()).expect("seed golden");
    std::env::set_var("LDIS_GOLDEN_DIR", &dir);

    // Quarantined rows are skipped; the surviving 80 match the golden.
    let mut o = opts(2);
    o.faults = FaultPlan::parse("5:panic:99").expect("valid fault spec");
    o.max_retries = 0;
    o.golden_check = true;
    let outcome = run(&o);
    assert_eq!(outcome.quarantined, 1);
    assert!(
        outcome
            .text
            .contains("skipped quarantined rows: mcf/LDIS-MT-RC"),
        "{}",
        outcome.text
    );

    // A surviving row that drifted still fails the degraded check.
    let mut drifted = o.clone();
    drifted.cfg.seed ^= 1;
    let err = sweep::execute(&drifted).expect_err("drifted rows must fail");
    assert!(err.contains("sweep"), "{err}");

    std::env::remove_var("LDIS_GOLDEN_DIR");
    let _ = fs::remove_dir_all(&dir);
}
