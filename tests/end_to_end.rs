//! End-to-end smoke tests: every benchmark model through every cache
//! organization, plus trace-replay identity.

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
use line_distillation::compress::{fac_4x_tags, CmprCache, CmprConfig, ValueSizeModel};
use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::mem::{LineGeometry, Trace};
use line_distillation::sfp::{SfpCache, SfpConfig};
use line_distillation::workloads::{cache_insensitive, memory_intensive, TraceLength};

const SMOKE_ACCESSES: u64 = 30_000;

/// All 27 benchmark models run against all five L2 organizations without
/// panicking and with consistent accounting.
#[test]
fn every_benchmark_through_every_organization() {
    let benches: Vec<_> = memory_intensive()
        .into_iter()
        .chain(cache_insensitive())
        .collect();
    for b in &benches {
        let values = (b.make)(1).values();
        let model = ValueSizeModel::new(values, LineGeometry::default(), 1);

        // Baseline.
        let mut h = Hierarchy::hpca2007(BaselineL2::new(CacheConfig::new(
            1 << 20,
            8,
            LineGeometry::default(),
        )));
        (b.make)(1).drive(&mut h, TraceLength::accesses(SMOKE_ACCESSES));
        check(b.name, "baseline", h.l2().stats());

        // Distill.
        let mut h = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
        (b.make)(1).drive(&mut h, TraceLength::accesses(SMOKE_ACCESSES));
        check(b.name, "distill", h.l2().stats());

        // CMPR.
        let mut h = Hierarchy::hpca2007(CmprCache::new(CmprConfig::cmpr_4x_tags(), model));
        (b.make)(1).drive(&mut h, TraceLength::accesses(SMOKE_ACCESSES));
        check(b.name, "cmpr", h.l2().stats());

        // FAC.
        let mut h = Hierarchy::hpca2007(fac_4x_tags(model));
        (b.make)(1).drive(&mut h, TraceLength::accesses(SMOKE_ACCESSES));
        check(b.name, "fac", h.l2().stats());

        // SFP.
        let mut h = Hierarchy::hpca2007(SfpCache::new(SfpConfig::sfp_16k()));
        (b.make)(1).drive(&mut h, TraceLength::accesses(SMOKE_ACCESSES));
        check(b.name, "sfp", h.l2().stats());
    }
}

fn check(bench: &str, org: &str, s: &line_distillation::cache::L2Stats) {
    assert!(s.accesses > 0, "{bench}/{org}: no L2 traffic");
    assert_eq!(
        s.loc_hits + s.woc_hits + s.hole_misses + s.line_misses,
        s.accesses,
        "{bench}/{org}: outcome accounting broken"
    );
    assert!(
        s.compulsory_misses <= s.demand_misses(),
        "{bench}/{org}: compulsory > misses"
    );
}

/// A recorded trace replayed against two fresh instances of the same
/// organization produces identical statistics — and the generator driven
/// live matches its own recording.
#[test]
fn trace_replay_is_identical_to_live_generation() {
    let mut workload = memory_intensive()[2].make;
    let trace: Trace = {
        let mut w = workload(77);
        w.record(SMOKE_ACCESSES as usize)
    };

    let run_trace = |trace: &Trace| {
        let mut h = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
        h.run_trace(trace);
        (h.l2().stats().demand_misses(), h.l2().stats().hits())
    };
    assert_eq!(run_trace(&trace), run_trace(&trace));

    // Live drive with the same seed must match the recording's effect.
    let mut live = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
    workload = memory_intensive()[2].make;
    workload(77).drive(&mut live, TraceLength::accesses(SMOKE_ACCESSES));
    assert_eq!(
        (live.l2().stats().demand_misses(), live.l2().stats().hits()),
        run_trace(&trace)
    );
}

/// Changing only the seed changes the trace but not the qualitative
/// outcome (reductions keep their sign across seeds).
#[test]
fn seed_robustness_of_the_headline_result() {
    for seed in [1u64, 7, 1234] {
        let mut base = Hierarchy::hpca2007(BaselineL2::new(CacheConfig::new(
            1 << 20,
            8,
            LineGeometry::default(),
        )));
        let b = memory_intensive()
            .into_iter()
            .find(|b| b.name == "health")
            .unwrap();
        (b.make)(seed).drive(&mut base, TraceLength::accesses(300_000));

        let mut dist = Hierarchy::hpca2007(DistillCache::new(DistillConfig::hpca2007_default()));
        (b.make)(seed).drive(&mut dist, TraceLength::accesses(300_000));

        assert!(
            dist.mpki() < base.mpki(),
            "seed {seed}: distill {} should beat baseline {}",
            dist.mpki(),
            base.mpki()
        );
    }
}
