//! Quickstart: build a distill cache, run a synthetic workload against it
//! and the traditional baseline, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::mem::LineGeometry;
use line_distillation::workloads::{HotSet, PointerChase, TraceLength, WordsProfile, Workload};

fn main() {
    // A workload with poor spatial locality: a pointer chase over 30k
    // nodes (~1.9 MB) touching ~2 of the 8 words per line, plus a small
    // hot region. The 1 MB baseline cache wastes 3/4 of its capacity on
    // words that are never read.
    let make_workload = || {
        Workload::builder("quickstart", 42)
            .stream(
                0.8,
                PointerChase::new(0, 30_000, WordsProfile::sparse(), 1, 42),
            )
            .stream(0.2, HotSet::new(1 << 24, 2_000, WordsProfile::mixed(), 2))
            .inst_gap(8.0)
            .build()
    };
    let accesses = TraceLength::accesses(2_000_000);

    // 1. The paper's baseline: 1 MB, 8-way, 64 B lines (Table 1).
    let baseline = BaselineL2::new(CacheConfig::new(1 << 20, 8, LineGeometry::default()));
    let mut base_hier = Hierarchy::hpca2007(baseline);
    make_workload().drive(&mut base_hier, accesses);

    // 2. The same megabyte as a distill cache: 6 LOC ways + 2 WOC ways,
    //    median-threshold filtering, reverter circuit (LDIS-MT-RC).
    let distill = DistillCache::new(DistillConfig::hpca2007_default());
    let mut dist_hier = Hierarchy::hpca2007(distill);
    make_workload().drive(&mut dist_hier, accesses);

    let b = base_hier.l2().stats();
    let d = dist_hier.l2().stats();
    println!("=== Line Distillation quickstart ===\n");
    println!("baseline 1MB 8-way:");
    println!("  L2 accesses: {:>9}", b.accesses);
    println!(
        "  hits:        {:>9}  ({:.1}%)",
        b.hits(),
        b.hit_rate() * 100.0
    );
    println!("  misses:      {:>9}", b.demand_misses());
    println!("  MPKI:        {:>9.3}\n", base_hier.mpki());

    println!("distill cache (LDIS-MT-RC), same 1MB:");
    println!("  LOC hits:    {:>9}", d.loc_hits);
    println!("  WOC hits:    {:>9}", d.woc_hits);
    println!("  hole misses: {:>9}", d.hole_misses);
    println!("  line misses: {:>9}", d.line_misses);
    println!("  MPKI:        {:>9.3}", dist_hier.mpki());
    println!(
        "  WOC installs: {:>8}   (filtered out: {})\n",
        d.woc_installs, d.distill_filtered
    );

    let reduction = (base_hier.mpki() - dist_hier.mpki()) / base_hier.mpki() * 100.0;
    println!("miss reduction from line distillation: {reduction:.1}%");
    assert!(reduction > 0.0, "distillation should win on sparse chases");
}
