//! Footprint-aware compression (Section 8): distillation picks the used
//! words, compression squeezes them — together they beat either alone.
//!
//! ```text
//! cargo run --release --example footprint_compression
//! ```

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy};
use line_distillation::compress::{class_of, fac_cache, CmprCache, CmprConfig, ValueSizeModel};
use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::mem::{Addr, LineGeometry};
use line_distillation::workloads::{spec2000, TraceLength, WordClass};

const ACCESSES: u64 = 2_000_000;

fn main() {
    // mcf: sparse pointer-heavy lines — the best case for FAC.
    let workload = spec2000::mcf(5);
    let values = workload.values();
    let geom = LineGeometry::default();
    let model = ValueSizeModel::new(values, geom, 5);

    // Show the Table 4 class mix of a few words of one line.
    println!("=== Table 4 encoding classes for one mcf line ===");
    let base_addr = Addr::new(0x0100_0000);
    for chunk in 0..8u64 {
        let v = values.value_at(base_addr.raw() / 4 + chunk, 5);
        let class = match class_of(v) {
            WordClass::Zero => "zero (2 bits)",
            WordClass::One => "one (2 bits)",
            WordClass::Narrow => "narrow (18 bits)",
            WordClass::Full => "full (34 bits)",
        };
        println!("  chunk {chunk}: {v:#010x}  -> {class}");
    }
    println!();

    let run = |name: &str, mpki: f64, base: f64| {
        println!(
            "  {name:<22} MPKI {mpki:>7.3}   ({:+.1}%)",
            (base - mpki) / base * 100.0
        );
    };

    let drive_base = || {
        let mut h = Hierarchy::hpca2007(BaselineL2::new(CacheConfig::new(1 << 20, 8, geom)));
        spec2000::mcf(5).drive(&mut h, TraceLength::accesses(ACCESSES));
        h.mpki()
    };
    let base = drive_base();
    println!("=== mcf: 1MB L2, four organizations ===");
    println!("  {:<22} MPKI {base:>7.3}", "baseline");

    let mut h = Hierarchy::hpca2007(DistillCache::new(
        DistillConfig::hpca2007_default().with_woc_ways(3),
    ));
    spec2000::mcf(5).drive(&mut h, TraceLength::accesses(ACCESSES));
    run("LDIS (3 WOC ways)", h.mpki(), base);

    let mut h = Hierarchy::hpca2007(CmprCache::new(CmprConfig::cmpr_4x_tags(), model));
    spec2000::mcf(5).drive(&mut h, TraceLength::accesses(ACCESSES));
    run("CMPR (4x tags)", h.mpki(), base);

    let mut h = Hierarchy::hpca2007(fac_cache(
        DistillConfig::hpca2007_default().with_woc_ways(3),
        model,
    ));
    spec2000::mcf(5).drive(&mut h, TraceLength::accesses(ACCESSES));
    let fac_mpki = h.mpki();
    run("FAC (distill+compress)", fac_mpki, base);

    println!();
    println!("Whole-line compression struggles (unused words are random garbage");
    println!("that still must be encoded); compressing only the used words");
    println!("multiplies the WOC's reach — the paper's footprint-aware");
    println!("compression (Figure 11).");
}
