//! The constant-memory SHARDS sampled-MRC engine vs. the exact Mattson
//! pass: sweep the {0.5, 0.75, 1, 1.5, 2, 4} MB capacities both ways at
//! three sampling rates, show the per-rate error against its budget, and
//! answer per-tenant "what size / LOC:WOC split" queries with the online
//! advisor.
//!
//! Where the Mattson engine keeps every referenced line on a stack, the
//! sampler tracks only lines whose spatial hash falls under a threshold
//! and evicts the largest hashes whenever the sample outgrows `S_max` —
//! memory stays constant no matter how large the trace grows, and the
//! SHARDS_adj correction keeps the estimated miss ratio within the
//! per-rate `EPSILON_TABLE` budget of the exact reconstruction.
//!
//! ```text
//! cargo run --release --example sampled_mrc
//! ```

use line_distillation::experiments::{
    advisor, mrc, run_capacity_sweep, run_sampled_capacity_sweep, RunConfig,
};
use line_distillation::mrc::{epsilon_miss_ratio, mpki_tolerance, ShardsConfig};
use line_distillation::workloads::spec2000;

fn main() {
    let cfg = RunConfig::quick();
    let b = spec2000::by_name("mcf").expect("mcf exists");
    println!("=== SHARDS sampled MRC: {} at 3 rates ===\n", b.name);

    let exact = run_capacity_sweep(&b, &cfg, &mrc::MRC_SIZES);
    let accesses = exact.points.first().expect("points").result.accesses;
    let instructions = exact.hierarchy.instructions;

    for rate in [0.1, 0.01, 0.001] {
        let s = run_sampled_capacity_sweep(&b, &cfg, &mrc::MRC_SIZES, &ShardsConfig::at_rate(rate));
        let tolerance = mpki_tolerance(rate, accesses, instructions);
        println!(
            "rate {rate}: {} tracked lines at peak (exact pass tracks every line)",
            s.peak_samples
        );
        let mut worst = 0.0f64;
        for (&size, label) in mrc::MRC_SIZES.iter().zip(mrc::MRC_SIZE_LABELS) {
            let err = (s.mpki_at(size) - exact.mpki_at(size)).abs();
            worst = worst.max(err);
            println!(
                "  {label:>6}: exact {:7.3} MPKI, sampled {:7.3} MPKI, |err| {err:6.3}",
                exact.mpki_at(size),
                s.mpki_at(size)
            );
        }
        assert!(worst <= tolerance, "within the bounded-error oracle budget");
        println!(
            "  worst error {worst:.3} MPKI <= budget {tolerance:.3} (epsilon {})\n",
            epsilon_miss_ratio(rate)
        );
    }

    println!("=== Online advisor: 4 interleaved tenants ===\n");
    let run = advisor::data(&cfg);
    println!("{}", advisor::report(&run));
}
