//! The deterministic parallel sweep engine: run the same benchmark ×
//! configuration matrix serially and on a worker pool, show the speedup,
//! and prove the results are bit-identical.
//!
//! Every cell derives its randomness from the run seed, the benchmark's
//! frozen id and the cache configuration's label — never from a shared
//! stream — so scheduling order cannot leak into any number.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! ```

use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::experiments::{
    parallel, run, run_baseline, run_matrix_with_threads, RunConfig, RunResult,
};
use line_distillation::workloads::memory_intensive;
use std::time::Instant;

fn sweep(threads: usize, cfg: &RunConfig) -> Vec<Vec<RunResult>> {
    let benches = memory_intensive();
    run_matrix_with_threads(threads, &benches, 3, |b, config| match config {
        0 => run_baseline(b, cfg, 1 << 20),
        1 => run(b, cfg, || DistillCache::new(DistillConfig::ldis_base())),
        _ => run(b, cfg, || {
            DistillCache::new(DistillConfig::hpca2007_default())
        }),
    })
}

fn main() {
    let cfg = RunConfig::quick();
    let threads = parallel::configured_threads();
    println!("=== Quick sweep: 16 benchmarks x 3 configurations ===");
    println!("worker pool: {threads} thread(s) (override with LDIS_THREADS)\n");

    let t0 = Instant::now();
    let serial = sweep(1, &cfg);
    let serial_time = t0.elapsed();
    println!("serial   (1 thread):  {serial_time:.2?}");

    let t0 = Instant::now();
    let pooled = sweep(threads, &cfg);
    let pooled_time = t0.elapsed();
    println!("parallel ({threads} threads): {pooled_time:.2?}");
    println!(
        "speedup: {:.2}x",
        serial_time.as_secs_f64() / pooled_time.as_secs_f64()
    );

    assert_eq!(serial, pooled, "matrices must be bit-identical");
    println!(
        "\nevery counter and float of the {}x3 matrix is bit-identical\n",
        serial.len()
    );

    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "bench", "base", "LDIS-Base", "LDIS-MT-RC"
    );
    for (b, row) in memory_intensive().iter().zip(&serial) {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            b.name, row[0].mpki, row[1].mpki, row[2].mpki
        );
    }
    println!("\n(MPKI; LDIS columns use per-cell derived seeds, so adding a");
    println!("configuration or reordering the matrix never moves these numbers)");
}
