//! The reverter circuit in action (Section 5.5).
//!
//! `swim`-like streaming touches one word per line first and the other
//! seven a little later — at a reuse distance that still fits the 8-way
//! baseline but not the 6-way LOC. Distillation turns those returns into
//! hole misses, so LDIS *hurts*. The reverter's set-dueling detects this
//! and disables LDIS for the follower sets.
//!
//! ```text
//! cargo run --release --example streaming_reverter
//! ```

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy};
use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::mem::{LineGeometry, TraceSource};
use line_distillation::workloads::spec2000;

fn main() {
    let total: u64 = 2_000_000;
    let step: u64 = 100_000;

    println!("=== swim: streaming with a trailing second pass ===\n");
    println!("Running {total} accesses; sampling the reverter every {step}:\n");
    println!(
        "{:>10}  {:>5}  {:>8}  {:>12}  {:>12}",
        "accesses", "PSEL", "LDIS", "distill-miss", "ATD-miss"
    );

    let mut with_rc = Hierarchy::hpca2007(DistillCache::new(DistillConfig::ldis_mt_rc()));
    let mut workload = spec2000::swim(11);
    let mut done = 0;
    while done < total {
        for _ in 0..step {
            let a = workload.next_access().expect("endless");
            with_rc.access(a);
        }
        done += step;
        let r = with_rc.l2().reverter().expect("RC configured");
        println!(
            "{:>10}  {:>5}  {:>8}  {:>12}  {:>12}",
            done,
            r.psel(),
            if r.ldis_enabled() {
                "enabled"
            } else {
                "DISABLED"
            },
            r.distill_leader_misses,
            r.atd_misses
        );
    }

    // Compare the three configurations end to end.
    let run = |mk: &dyn Fn() -> DistillCache| {
        let mut h = Hierarchy::hpca2007(mk());
        spec2000::swim(11).drive(
            &mut h,
            line_distillation::workloads::TraceLength::accesses(total),
        );
        h.mpki()
    };
    let mut base_h = Hierarchy::hpca2007(BaselineL2::new(CacheConfig::new(
        1 << 20,
        8,
        LineGeometry::default(),
    )));
    spec2000::swim(11).drive(
        &mut base_h,
        line_distillation::workloads::TraceLength::accesses(total),
    );
    let base = base_h.mpki();
    let no_rc = run(&|| DistillCache::new(DistillConfig::ldis_mt()));
    let rc = run(&|| DistillCache::new(DistillConfig::ldis_mt_rc()));

    println!("\nMPKI:");
    println!("  traditional baseline : {base:>7.3}");
    println!(
        "  LDIS-MT (no reverter): {no_rc:>7.3}  ({:+.1}%)",
        (base - no_rc) / base * 100.0
    );
    println!(
        "  LDIS-MT-RC           : {rc:>7.3}  ({:+.1}%)",
        (base - rc) / base * 100.0
    );
    println!("\nWithout the reverter, distillation nearly doubles swim's misses;");
    println!("with it, the distill cache tracks the baseline (paper, Section 7.1).");
}
