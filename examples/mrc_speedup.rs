//! The single-pass Mattson MRC engine vs. per-size direct simulation:
//! compute the full {0.5, 0.75, 1, 1.5, 2, 4} MB capacity sweep both
//! ways, show the speedup, and prove the numbers are bit-identical.
//!
//! One Mattson pass maintains a per-set LRU stack and a stack-distance
//! histogram; the LRU inclusion property then answers every
//! associativity of the sweep at once, where the direct path pays one
//! full simulation per cache size.
//!
//! ```text
//! cargo run --release --example mrc_speedup
//! ```

use line_distillation::experiments::{
    for_each_benchmark, mrc, run_baseline_with_words, run_capacity_sweep, run_matrix, RunConfig,
};
use std::time::Instant;

fn main() {
    let cfg = RunConfig::quick();
    let benches = mrc::all_benchmarks();
    let sizes = &mrc::MRC_SIZES;
    println!(
        "=== MRC sweep: {} benchmarks x {} cache sizes ===\n",
        benches.len(),
        sizes.len()
    );

    let t0 = Instant::now();
    let direct = run_matrix(&benches, sizes.len(), |b, i| {
        run_baseline_with_words(b, &cfg, sizes[i])
    });
    let direct_time = t0.elapsed();
    println!(
        "direct  ({} simulations): {direct_time:.2?}",
        benches.len() * sizes.len()
    );

    let t0 = Instant::now();
    let sweeps = for_each_benchmark(&benches, |b| run_capacity_sweep(b, &cfg, sizes));
    let mattson_time = t0.elapsed();
    println!(
        "mattson ({} passes):      {mattson_time:.2?}",
        benches.len()
    );
    println!(
        "speedup: {:.2}x\n",
        direct_time.as_secs_f64() / mattson_time.as_secs_f64()
    );

    let mut cells = 0usize;
    for (sweep, row) in sweeps.iter().zip(&direct) {
        for (&size, (r, words)) in sizes.iter().zip(row) {
            let p = sweep.point(size).expect("size missing from sweep");
            assert_eq!(p.mpki.to_bits(), r.mpki.to_bits());
            assert_eq!(p.result.line_misses, r.l2.line_misses);
            assert_eq!(p.result.words_used_with_resident, *words);
            cells += 1;
        }
    }
    println!("bit-identical across all {cells} (benchmark, size) cells ✓");
}
