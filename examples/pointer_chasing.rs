//! The paper's motivating case: pointer-chasing workloads (olden `health`)
//! where most words of every cache line are dead weight.
//!
//! Shows the four distill-cache outcomes, the WOC's occupancy, and how the
//! benefit compares against simply buying a bigger traditional cache
//! (Figure 8's capacity analysis).
//!
//! ```text
//! cargo run --release --example pointer_chasing
//! ```

use line_distillation::cache::{BaselineL2, CacheConfig, Hierarchy, SecondLevel};
use line_distillation::distill::{DistillCache, DistillConfig};
use line_distillation::mem::LineGeometry;
use line_distillation::workloads::{spec2000, TraceLength};

const ACCESSES: u64 = 2_000_000;

fn run_traditional(size_bytes: u64) -> f64 {
    let lines = size_bytes / 64;
    let ways = if (lines / 8).is_power_of_two() {
        8
    } else {
        (lines / 2048) as u32
    };
    let cfg = CacheConfig::with_sets(lines / ways as u64, ways, LineGeometry::default());
    let mut hier = Hierarchy::hpca2007(BaselineL2::new(cfg));
    spec2000::health(7).drive(&mut hier, TraceLength::accesses(ACCESSES));
    hier.mpki()
}

fn main() {
    println!("=== health (olden): linked-list traversal, ~2.4 of 8 words used ===\n");

    let distill = DistillCache::new(DistillConfig::hpca2007_default());
    let mut hier = Hierarchy::hpca2007(distill);
    spec2000::health(7).drive(&mut hier, TraceLength::accesses(ACCESSES));

    let d = hier.l2().stats();
    let total = d.accesses as f64;
    println!("distill cache (1MB) access breakdown:");
    println!("  LOC hits:    {:>6.1}%", d.loc_hits as f64 / total * 100.0);
    println!("  WOC hits:    {:>6.1}%", d.woc_hits as f64 / total * 100.0);
    println!(
        "  hole misses: {:>6.1}%",
        d.hole_misses as f64 / total * 100.0
    );
    println!(
        "  line misses: {:>6.1}%",
        d.line_misses as f64 / total * 100.0
    );

    // WOC occupancy: how many word slots hold live data, and how many
    // lines fit in a few sample sets.
    let woc = hier.l2().woc();
    let capacity = 2048 * 2 * 8u64;
    println!(
        "\nWOC occupancy: {} of {} word slots ({:.1}%)",
        woc.occupancy(),
        capacity,
        woc.occupancy() as f64 / capacity as f64 * 100.0
    );
    for set in [0usize, 512, 1024] {
        println!(
            "  set {set:>4}: {} distilled lines resident",
            woc.lines_in_set(set)
        );
    }
    println!(
        "\nmedian-threshold: current threshold = {} words ({} windows)",
        hier.l2().median().threshold(),
        hier.l2().median().windows_completed()
    );

    // Capacity comparison (Figure 8): the same workload against bigger
    // traditional caches.
    println!("\nMPKI vs. traditional caches of growing size:");
    let distill_mpki = hier.mpki();
    for (label, size) in [("1MB", 1u64 << 20), ("1.5MB", 3 << 19), ("2MB", 2 << 20)] {
        println!("  traditional {label:>5}: {:>7.3}", run_traditional(size));
    }
    println!("  distill     1MB  : {distill_mpki:>7.3}");
    println!("\nFor pointer chases whose dataset exceeds 2MB, one distilled");
    println!("megabyte outperforms doubling the cache (paper, Figure 8).");
}
